"""Decision-cache durability: restarts never re-spend the oracle.

The tentpole guarantee: verdicts persist as JSON-lines next to the
model, so a *restarted* consolidator — fresh process, empty cluster /
candidate state — re-streaming data whose variation was fully judged
asks **zero** repeat questions, and its republished models extend the
prior version sequence.
"""

import json

import pytest

from repro.core.replacement import Replacement
from repro.datagen.address import address_dataset
from repro.datagen.base import GeneratorSpec
from repro.datagen.stream import dataset_stream
from repro.pipeline.oracle import FORWARD, REVERSE, Decision
from repro.serve.registry import ModelRegistry
from repro.stream import (
    DecisionCache,
    StreamConsolidator,
    ground_truth_oracle_factory,
)

SEED = 7
#: Variant-only clusters: verdicts are content-determined, so a replay
#: of the same records must be answerable entirely from the cache.
SPEC = GeneratorSpec(
    n_clusters=25,
    mean_cluster_size=5.0,
    conflict_rate=0.0,
    variant_rate=0.8,
    seed=SEED,
)
UNBOUNDED = 100_000


class TestDecisionCache:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        cache = DecisionCache(path)
        assert cache.record(Replacement("St", "Street"), Decision(True))
        assert cache.record(
            Replacement("Ave", "Av"), Decision(False, REVERSE)
        )
        reloaded = DecisionCache(path)
        assert reloaded.replayed == 2
        assert reloaded.get(Replacement("St", "Street")) == Decision(
            True, FORWARD
        )
        assert reloaded.get(Replacement("Ave", "Av")) == Decision(
            False, REVERSE
        )

    def test_first_verdict_wins(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        cache = DecisionCache(path)
        assert cache.record(Replacement("a", "b"), Decision(True))
        assert not cache.record(Replacement("a", "b"), Decision(False))
        assert cache.get(Replacement("a", "b")).approved
        assert len(path.read_text().splitlines()) == 1

    def test_in_memory_without_path(self):
        cache = DecisionCache()
        cache.record(Replacement("a", "b"), Decision(True))
        assert len(cache) == 1
        assert Replacement("a", "b") in cache

    def test_torn_final_line_is_skipped_and_repaired(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        DecisionCache(path).record(Replacement("a", "b"), Decision(True))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"lhs": "c", "rhs": "d", "appro')  # crashed here
        reloaded = DecisionCache(path)
        assert len(reloaded) == 1
        # The torn tail must be repaired at load, or the next append
        # glues JSON onto the fragment: that verdict would be lost and
        # the log would refuse to load once another line followed.
        reloaded.record(Replacement("e", "f"), Decision(True))
        again = DecisionCache(path)
        assert len(again) == 2
        assert again.get(Replacement("e", "f")) == Decision(True, FORWARD)

    def test_missing_final_newline_is_repaired(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        DecisionCache(path).record(Replacement("a", "b"), Decision(True))
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 1)  # crash ate the newline
        reloaded = DecisionCache(path)
        assert len(reloaded) == 1  # the verdict itself is intact
        reloaded.record(Replacement("e", "f"), Decision(True))
        assert len(DecisionCache(path)) == 2

    def test_corruption_elsewhere_is_loud(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        path.write_text(
            "not json at all\n"
            + json.dumps(
                {"lhs": "a", "rhs": "b", "approved": True}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="corrupt decision log"):
            DecisionCache(path)

    def test_terminate_repair_writes_the_missing_newline(self, tmp_path):
        """The ``("terminate", 0)`` repair path: an intact final
        verdict whose newline the crash ate is kept, and the load
        itself appends the newline — so the *very next* append starts
        on a fresh line instead of gluing JSON onto the verdict."""
        path = tmp_path / "decisions.jsonl"
        DecisionCache(path).record(Replacement("a", "b"), Decision(True))
        DecisionCache(path).record(Replacement("c", "d"), Decision(False))
        with open(path, "r+b") as handle:
            handle.seek(0, 2)
            handle.truncate(handle.tell() - 1)
        assert not path.read_bytes().endswith(b"\n")
        reloaded = DecisionCache(path)
        # Both verdicts survive; the file is terminated again by the
        # load alone (no append needed to heal it).
        assert len(reloaded) == 2
        assert path.read_bytes().endswith(b"\n")
        # A subsequent append lands on its own line and the log stays
        # fully parseable.
        reloaded.record(Replacement("e", "f"), Decision(True))
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line) for line in lines)
        assert len(DecisionCache(path)) == 3

    def test_source_field_round_trips(self, tmp_path):
        """Machine-settled verdicts are tagged in the log (``source``)
        but replay exactly like asked ones."""
        path = tmp_path / "decisions.jsonl"
        cache = DecisionCache(path)
        cache.record(Replacement("a", "b"), Decision(True))
        cache.record(
            Replacement("a", "c"), Decision(True), source="inferred"
        )
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert "source" not in rows[0]
        assert rows[1]["source"] == "inferred"
        reloaded = DecisionCache(path)
        assert reloaded.replayed == 2
        assert reloaded.get(Replacement("a", "c")) == Decision(
            True, FORWARD
        )


class TestArchiveLog:
    """``archive_log``: a fresh run moves the stale verdict log aside
    to the first free ``.pre-fresh-<k>`` slot — never overwriting the
    paid-for review history of *earlier* fresh runs."""

    def test_backup_slot_collision_picks_the_next_free_slot(
        self, tmp_path
    ):
        from repro.stream.decisions import archive_log

        path = tmp_path / "decisions.jsonl"
        first = '{"lhs": "a", "rhs": "b", "approved": true}\n'
        second = '{"lhs": "c", "rhs": "d", "approved": true}\n'
        (tmp_path / "decisions.jsonl.pre-fresh-1").write_text(first)
        path.write_text(second)
        backup = archive_log(path)
        # Slot 1 is taken by an earlier fresh run: the new backup must
        # land in slot 2 with slot 1 untouched.
        assert backup == tmp_path / "decisions.jsonl.pre-fresh-2"
        assert backup.read_text() == second
        assert (
            tmp_path / "decisions.jsonl.pre-fresh-1"
        ).read_text() == first
        assert not path.exists()

    def test_append_after_archival_starts_a_clean_log(self, tmp_path):
        from repro.stream.decisions import archive_log

        path = tmp_path / "decisions.jsonl"
        DecisionCache(path).record(Replacement("a", "b"), Decision(True))
        archive_log(path)
        fresh = DecisionCache(path)
        assert fresh.replayed == 0  # nothing stale replayed
        fresh.record(Replacement("c", "d"), Decision(True))
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["lhs"] == "c"

    def test_archive_of_missing_log_is_a_no_op(self, tmp_path):
        from repro.stream.decisions import archive_log

        assert archive_log(tmp_path / "nope.jsonl") is None
        assert archive_log(None) is None


@pytest.fixture(scope="module")
def stream():
    return dataset_stream(
        address_dataset(spec=SPEC, seed=SEED), batches=3, seed=SEED
    )


def make_consolidator(stream, registry, **kwargs):
    return StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=0
        ),
        key_attribute=stream.key_column,
        budget_per_batch=UNBOUNDED,
        registry=registry,
        model_name="addr",
        **kwargs,
    )


class TestRestartResume:
    """Engine off both runs: the restart is a byte-for-byte replay of
    the judged variation, so the cache must answer *everything*."""

    @pytest.fixture(scope="class")
    def first_run(self, stream, tmp_path_factory):
        root = tmp_path_factory.mktemp("registry")
        registry = ModelRegistry(root)
        with make_consolidator(
            stream, registry, use_engine=False
        ) as consolidator:
            consolidator.run(stream.batches)
            questions = consolidator.questions_asked
            version = consolidator.model_version
            final = {
                r.rid: r.values[stream.column]
                for c in consolidator.table.clusters
                for r in c.records
            }
        assert questions > 0 and version > 0
        return registry, questions, version, final

    def test_decision_log_written_next_to_model(self, first_run):
        registry, _, _, _ = first_run
        log = registry.root / "addr" / "decisions.jsonl"
        assert log.exists()
        assert len(log.read_text().splitlines()) > 0

    def test_restart_asks_zero_repeat_questions(self, stream, first_run):
        registry, _, first_version, first_final = first_run
        with make_consolidator(
            stream, registry, use_engine=False
        ) as restarted:
            restarted.run(stream.batches)
            assert restarted.resumed_from == first_version
            assert restarted.standardizer.decisions.replayed > 0
            # The guarantee: every question of the first run is
            # answered from the durable cache — zero repeats.
            assert restarted.questions_asked == 0
            final = {
                r.rid: r.values[stream.column]
                for c in restarted.table.clusters
                for r in c.records
            }
        assert final == first_final

    def test_engine_restart_never_repeats_a_judged_member(
        self, stream, first_run
    ):
        """With the serve fast path on, a restarted stream may meet
        *new* variation (arrivals standardized before resolution pair
        differently), but may never re-ask a judged member."""
        registry, _, _, _ = first_run
        log_path = registry.root / "addr" / "decisions.jsonl"
        judged = {member for member, _ in DecisionCache(log_path).items()}
        with make_consolidator(
            stream, registry, use_engine=True
        ) as restarted:
            restarted.run(stream.batches)
            asked = [
                member
                for step in restarted.standardizer.log.steps[
                    len(restarted.standardizer.log.steps)
                    - restarted.questions_asked:
                ]
                for member in step.group.replacements
            ]
        assert not judged.intersection(asked)

    def test_resumed_publish_extends_model_sequence(
        self, stream, first_run
    ):
        registry, _, first_version, _ = first_run
        with make_consolidator(stream, registry) as restarted:
            restarted.process_batch(stream.batches[0])
            # Zero new confirmations -> nothing published; the engine
            # still serves the resumed model.
            assert restarted.engine is not None
            assert (
                restarted.engine.model.groups_confirmed
                == registry.load("addr").groups_confirmed
            )
            rebuilt = restarted.build_model()
            prior = registry.load("addr", first_version)
            assert [g.to_dict() for g in rebuilt.groups[: len(prior.groups)]] == [
                g.to_dict() for g in prior.groups
            ]

    def test_fresh_flag_ignores_registry_state(self, stream, first_run):
        registry, first_questions, _, _ = first_run
        with make_consolidator(
            stream,
            registry,
            resume=False,
            persist_decisions=False,
            use_engine=False,
        ) as fresh:
            fresh.run(stream.batches)
            assert fresh.resumed_from is None
            assert fresh.questions_asked == first_questions

    def test_fresh_run_archives_the_stale_decision_log(
        self, stream, tmp_path
    ):
        """Regression: ``resume=False`` once replayed (and appended to)
        the existing verdict log, so a "fresh" run silently reused
        stale verdicts and asked ~zero questions.  Starting over must
        neither replay the old log nor mix new verdicts into it — the
        old file moves aside as paid-for review history."""
        registry = ModelRegistry(tmp_path / "registry")
        log = registry.root / "addr" / "decisions.jsonl"
        with make_consolidator(
            stream, registry, use_engine=False
        ) as first:
            first.process_batch(stream.batches[0])
            first_questions = first.questions_asked
        assert first_questions > 0 and log.exists()
        stale = log.read_text()
        with make_consolidator(
            stream, registry, resume=False, use_engine=False
        ) as fresh:
            fresh.process_batch(stream.batches[0])
            assert fresh.standardizer.decisions.replayed == 0
            assert fresh.questions_asked == first_questions
        backup = log.parent / "decisions.jsonl.pre-fresh-1"
        assert backup.read_text() == stale
        # The new log holds only the fresh run's own verdicts (here a
        # deterministic re-judgment of the same data, so the same
        # count) — not stale lines with new ones appended after.
        assert log.exists()
        assert len(log.read_text().splitlines()) == len(
            stale.splitlines()
        )

    def test_resume_without_verdicts_starts_over_not_doubled(
        self, stream, tmp_path
    ):
        """Regression: resuming without a decision log rehydrated the
        prior model's group sequence, then re-judged everything and
        appended — publishing a model with every group twice."""
        registry = ModelRegistry(tmp_path / "registry")
        with make_consolidator(
            stream,
            registry,
            use_engine=False,
            persist_decisions=False,
        ) as first:
            first.run(stream.batches)
            first_groups = first.build_model().groups_confirmed
        assert first_groups > 0
        with make_consolidator(
            stream,
            registry,
            use_engine=False,
            persist_decisions=False,
        ) as second:
            second.run(stream.batches)
            # No verdicts to replay: the run starts over (no warm
            # start), re-judges deterministically, and publishes the
            # same-sized model — never a doubled group sequence.
            assert second.resumed_from is None
            assert second.build_model().groups_confirmed == first_groups

    def test_sharded_restart_also_zero_questions(self, stream, first_run):
        registry, _, _, _ = first_run
        with make_consolidator(
            stream,
            registry,
            shards=3,
            shard_processes=False,
            use_engine=False,
        ) as restarted:
            restarted.run(stream.batches)
            assert restarted.questions_asked == 0


class TestOrientation:
    """A verdict answers the judged pair in *either* orientation.

    The store derives a value pair in whichever orientation its cells
    were indexed, so later batches can resurface a judged pair
    reversed.  Without orientation-aware lookup that re-ask costs a
    second question, and — because the oracle's direction defaults to
    FORWARD when neither side is canonical — approves *both*
    orientations, planting an A⇄B rewrite cycle that the replay fixed
    point in ``reuse_confirmed`` could never escape (the bug this
    class pins).
    """

    def test_reversed_lookup_flips_the_direction(self):
        cache = DecisionCache()
        cache.record(Replacement("a", "b"), Decision(True, FORWARD))
        mirrored = cache.get(Replacement("b", "a"))
        assert mirrored == Decision(True, REVERSE)
        # Both orientations resolve to the SAME rewrite: apply a -> b.
        resolved = (
            Replacement("b", "a").reversed()
            if mirrored.direction == REVERSE
            else Replacement("b", "a")
        )
        assert resolved == Replacement("a", "b")

    def test_reversed_lookup_of_a_reverse_verdict(self):
        cache = DecisionCache()
        cache.record(Replacement("a", "b"), Decision(True, REVERSE))
        assert cache.get(Replacement("b", "a")) == Decision(True, FORWARD)

    def test_rejections_mirror_too(self):
        cache = DecisionCache()
        cache.record(Replacement("a", "b"), Decision(False, FORWARD))
        mirrored = cache.get(Replacement("b", "a"))
        assert mirrored is not None and not mirrored.approved
        assert Replacement("b", "a") in cache

    def test_record_is_first_wins_across_orientations(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        cache = DecisionCache(path)
        assert cache.record(Replacement("a", "b"), Decision(True, FORWARD))
        # The mirrored verdict is already known: not recorded, not
        # appended to the durable log.
        assert not cache.record(
            Replacement("b", "a"), Decision(True, FORWARD)
        )
        assert len(path.read_text().splitlines()) == 1
        assert len(cache) == 1

    def test_replayed_log_stays_orientation_aware(self, tmp_path):
        path = tmp_path / "decisions.jsonl"
        DecisionCache(path).record(
            Replacement("a", "b"), Decision(True, FORWARD)
        )
        reloaded = DecisionCache(path)
        assert reloaded.get(Replacement("b", "a")) == Decision(
            True, REVERSE
        )

    def test_conflicting_orientations_cannot_ping_pong_replay(self):
        """Defense in depth: even a pathological verdict history with
        both orientations approved (hand-edited log) must degrade to a
        bounded replay walk, not an infinite loop."""
        from repro.config import DEFAULT_CONFIG
        from repro.data.table import ClusterTable, Record
        from repro.stream.standardizer import IncrementalStandardizer

        table = ClusterTable(["v"])
        table.add_cluster(
            "c0",
            [
                Record("r0", {"v": "aa bb"}),
                Record("r1", {"v": "aa cc"}),
                Record("r2", {"v": "aa bb"}),
            ],
        )
        standardizer = IncrementalStandardizer(
            table, "v", DEFAULT_CONFIG
        )
        from repro.data.table import CellRef

        standardizer.ingest(
            [CellRef(0, 0, "v"), CellRef(0, 1, "v"), CellRef(0, 2, "v")]
        )
        # Forge the pathological history the cache normally prevents:
        # both orientations approved FORWARD.
        standardizer.decisions._decisions[
            Replacement("aa bb", "aa cc")
        ] = Decision(True, FORWARD)
        standardizer.decisions._decisions[
            Replacement("aa cc", "aa bb")
        ] = Decision(True, FORWARD)
        reused, changed = standardizer.reuse_confirmed()
        # Terminated (the assertion is that we got here) with a
        # deterministic, bounded amount of rewriting.
        assert changed >= 0

    def test_legacy_log_with_both_orientations_loads_first_only(
        self, tmp_path
    ):
        """A log written before lookups were orientation-aware can hold
        both A->B and B->A (both approved FORWARD).  Replay must keep
        only the first — loading both would replant the rewrite cycle
        the mirrored lookup exists to prevent."""
        path = tmp_path / "decisions.jsonl"
        path.write_text(
            json.dumps(
                {
                    "lhs": "a",
                    "rhs": "b",
                    "approved": True,
                    "direction": FORWARD,
                }
            )
            + "\n"
            + json.dumps(
                {
                    "lhs": "b",
                    "rhs": "a",
                    "approved": True,
                    "direction": FORWARD,
                }
            )
            + "\n"
        )
        cache = DecisionCache(path)
        assert len(cache) == 1
        assert cache.get(Replacement("a", "b")) == Decision(True, FORWARD)
        # The mirrored key answers with the SAME resolved rewrite.
        assert cache.get(Replacement("b", "a")) == Decision(True, REVERSE)
