"""Property-style serialization tests: random ``Program``s and
``StringFunction``s survive ``to_dict`` -> JSON -> ``from_dict``
unchanged (dataclass equality, canonical keys, and evaluation
behaviour)."""

import json
import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import Config
from repro.core.functions import (
    ConstantStr,
    Prefix,
    SubStr,
    Suffix,
    function_from_dict,
)
from repro.core.positions import (
    BEGIN,
    END,
    ConstPos,
    MatchPos,
    position_from_dict,
)
from repro.core.program import Program
from repro.core.terms import (
    DEFAULT_REGEX_TERMS,
    ConstTerm,
    TermVocabulary,
    term_from_dict,
)

SMALL = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

text = st.text(
    alphabet=string.ascii_letters + string.digits + " .,-", max_size=12
)
nonzero_k = st.integers(min_value=-4, max_value=4).filter(lambda k: k != 0)

terms = st.one_of(
    st.sampled_from(DEFAULT_REGEX_TERMS),
    text.filter(bool).map(ConstTerm),
)

positions = st.one_of(
    nonzero_k.map(ConstPos),
    st.builds(MatchPos, terms, nonzero_k, st.sampled_from([BEGIN, END])),
)

functions = st.one_of(
    text.map(ConstantStr),
    st.builds(SubStr, positions, positions),
    st.builds(Prefix, terms, nonzero_k),
    st.builds(Suffix, terms, nonzero_k),
)

programs = st.lists(functions, min_size=1, max_size=5).map(
    lambda fs: Program(tuple(fs))
)


def through_json(payload):
    return json.loads(json.dumps(payload))


class TestRoundTrips:
    @SMALL
    @given(terms)
    def test_term(self, term):
        assert term_from_dict(through_json(term.to_dict())) == term

    @SMALL
    @given(positions)
    def test_position(self, position):
        again = position_from_dict(through_json(position.to_dict()))
        assert again == position
        assert again.canonical() == position.canonical()

    @SMALL
    @given(functions)
    def test_function(self, fn):
        again = function_from_dict(through_json(fn.to_dict()))
        assert again == fn
        assert again.canonical() == fn.canonical()

    @SMALL
    @given(programs)
    def test_program(self, program):
        again = Program.from_dict(through_json(program.to_dict()))
        assert again == program
        assert again.canonical() == program.canonical()
        assert again.sort_key() == program.sort_key()

    @SMALL
    @given(programs, text)
    def test_program_evaluates_identically(self, program, value):
        again = Program.from_dict(through_json(program.to_dict()))
        assert again.evaluate(value) == program.evaluate(value)

    @SMALL
    @given(
        st.lists(text.filter(bool), max_size=4),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_config(self, extra_terms, seed):
        config = Config(
            seed=seed, extra_constant_terms=tuple(extra_terms)
        )
        assert Config.from_dict(through_json(config.to_dict())) == config

    @SMALL
    @given(st.lists(text.filter(bool), max_size=4))
    def test_vocabulary(self, literals):
        vocab = TermVocabulary().with_constant_terms(literals)
        again = TermVocabulary.from_dict(through_json(vocab.to_dict()))
        assert again.regex_terms == vocab.regex_terms
        assert again.constant_terms == vocab.constant_terms
