"""Golden-file test: a model saved by schema version 1 must keep
loading and behaving identically in every future build.

``data/golden_model.json`` is a checked-in artifact — if this test
breaks, the change broke compatibility with already-saved models and
needs a schema-version bump plus a migration path, not a test edit.
"""

import json
from pathlib import Path

import pytest

from repro.core.functions import SubStr
from repro.pipeline.oracle import FORWARD
from repro.serve import ApplyEngine, TransformationModel

GOLDEN = Path(__file__).parent / "data" / "golden_model.json"


@pytest.fixture(scope="module")
def golden():
    return TransformationModel.load(GOLDEN)


class TestGoldenLoads:
    def test_identity(self, golden):
        assert golden.name == "golden-address"
        assert golden.column == "address"
        assert golden.schema_version == 1

    def test_counts(self, golden):
        assert golden.groups_confirmed == 2
        assert golden.replacements_confirmed == 3
        assert golden.cells_changed == 3

    def test_program_reconstruction(self, golden):
        program = golden.groups[0].program
        assert len(program) == 1
        assert isinstance(program.functions[0], SubStr)
        assert golden.groups[0].direction == FORWARD
        assert golden.groups[0].structure == (("d", "l"), ("d",))

    def test_config_and_vocabulary(self, golden):
        assert golden.config.max_path_length == 6
        assert golden.config.seed == 3
        assert [t.name for t in golden.vocabulary.regex_terms] == [
            "C",
            "l",
            "d",
            "b",
        ]

    def test_round_trip_preserves_file_payload(self, golden):
        original = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert golden.to_dict() == original


class TestGoldenBehaviour:
    def test_engine_applies_golden_rules(self, golden):
        engine = ApplyEngine(golden)
        assert engine.transform("9th") == "9"
        assert engine.transform("42nd") == "42"  # program generalization
        assert engine.transform("5 St") == "5 Street"  # token rule
        assert engine.transform("untouched") == "untouched"
