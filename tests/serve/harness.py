"""Harness for the network serving tier tests.

Three layers:

* :class:`ServeClient` — a line-protocol client (one JSON request out,
  one JSON reply in) over an asyncio stream;
* :func:`start_test_server` / :func:`spawn_cli_server` — an in-process
  :class:`~repro.serve.server.ServeServer` on an ephemeral port, and a
  real ``python -m repro serve --listen`` subprocess (whose bound port
  is parsed from the stderr banner) for kill/restart fault tests;
* :class:`FaultInjector` — the misbehaving clients and broken
  publishers the fault suite throws at a live server: aborted
  connections mid-request, slow-loris byte drips, oversized lines,
  torn (half-written) model files in the registry, SIGKILL.

Tests drive everything with ``asyncio.run`` — no external async test
plugin is assumed.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.serve.registry import slugify
from repro.serve.server import ServeServer

REPO_ROOT = Path(__file__).resolve().parents[2]
BANNER = re.compile(r"listening on ([0-9.]+):(\d+)")


class ServeClient:
    """One connection speaking the newline-delimited JSON protocol."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def send_raw(self, data: bytes):
        self.writer.write(data)
        await self.writer.drain()

    async def read_json(self, timeout=10.0):
        line = await asyncio.wait_for(self.reader.readline(), timeout)
        if not line:
            raise EOFError("server closed the connection")
        return json.loads(line)

    async def rpc(self, timeout=10.0, **request):
        await self.send_raw((json.dumps(request) + "\n").encode())
        return await self.read_json(timeout=timeout)

    async def close(self):
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def abort(self):
        """Hard-drop the connection without a FIN handshake."""
        self.writer.transport.abort()

    async def __aenter__(self):
        return self

    async def __aexit__(self, *_exc):
        await self.close()


async def start_test_server(source, **kwargs) -> ServeServer:
    """A started in-process server on 127.0.0.1:<ephemeral>."""
    server = ServeServer(source, **kwargs)
    await server.start("127.0.0.1", 0)
    return server


def spawn_cli_server(args, timeout=30.0):
    """Launch ``python -m repro serve --listen 127.0.0.1:0 <args>`` and
    return ``(proc, host, port)`` once the stderr banner announces the
    bound address."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--listen", "127.0.0.1:0"]
        + list(args),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        cwd=str(REPO_ROOT),
    )
    deadline = time.monotonic() + timeout
    banner = ""
    while time.monotonic() < deadline:
        line = proc.stderr.readline().decode("utf-8", "replace")
        if not line:
            if proc.poll() is not None:
                raise RuntimeError(
                    "serve subprocess died before binding: "
                    + proc.stderr.read().decode("utf-8", "replace")
                )
            time.sleep(0.01)
            continue
        banner += line
        match = BANNER.search(banner)
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    raise RuntimeError(f"no listening banner within {timeout}s: {banner!r}")


def stop_cli_server(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10)
    if proc.stdout:
        proc.stdout.close()
    if proc.stderr:
        proc.stderr.close()


class FaultInjector:
    """Misbehaving clients and broken publishers, aimed at one server."""

    def __init__(self, host, port):
        self.host = host
        self.port = port

    async def abort_mid_request(self, payload=b'{"op": "ping"'):
        """Open, send a partial request, and hard-drop the connection."""
        client = await ServeClient.connect(self.host, self.port)
        await client.send_raw(payload)
        client.abort()

    async def disconnect_after_request(self, request=None):
        """Send a full request but vanish before reading the reply."""
        client = await ServeClient.connect(self.host, self.port)
        line = json.dumps(request or {"op": "ping"}) + "\n"
        await client.send_raw(line.encode())
        client.abort()

    async def slow_loris(self, request=None, chunk=2, delay=0.01):
        """Drip a request byte-by-byte; returns the reply (or None if
        the server idle-closed us first — also a correct outcome)."""
        data = (json.dumps(request or {"op": "ping"}) + "\n").encode()
        client = await ServeClient.connect(self.host, self.port)
        try:
            for i in range(0, len(data), chunk):
                await client.send_raw(data[i : i + chunk])
                await asyncio.sleep(delay)
            return await client.read_json()
        except (EOFError, ConnectionError):
            return None
        finally:
            await client.close()

    async def oversized(self, size):
        """Send one request line larger than the server's limit;
        returns the error reply (the server must answer, then close)."""
        junk = json.dumps({"op": "apply", "value": "x" * size}) + "\n"
        async with await ServeClient.connect(self.host, self.port) as client:
            await client.send_raw(junk.encode())
            reply = await client.read_json()
            # The connection must now be closed server-side.
            follow_up = await asyncio.wait_for(
                client.reader.readline(), timeout=10.0
            )
            assert follow_up == b"", "oversized connection stayed open"
            return reply

    @staticmethod
    def torn_publish(registry_root, name, payload=b'{"kind": "repro'):
        """Plant a half-written model file as the newest version —
        what a publisher crash *between* open and atomic rename can
        never produce, but a broken publisher writing in place would.
        The serving tier must skip it and keep answering."""
        slug_dir = Path(registry_root) / slugify(name)
        versions = [
            int(m.group(1))
            for m in (
                re.match(r"^v(\d+)\.json$", p.name)
                for p in slug_dir.glob("v*.json")
            )
            if m
        ]
        torn = slug_dir / f"v{max(versions, default=0) + 1}.json"
        torn.write_bytes(payload)
        return torn

    @staticmethod
    def kill(proc):
        """SIGKILL — no shutdown handlers, no flush, nothing."""
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
