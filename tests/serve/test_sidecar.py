"""Precompiled apply-index sidecars: roundtrip fidelity, fingerprint
gating, failure-mode fallbacks, and registry integration.

The contract under test: a sidecar is an *accelerator, never a
correctness dependency* — an engine installed from one is structurally
identical to a cold compile, and every way a sidecar can be wrong
(missing, torn, foreign, stale, hand-edited) degrades to ``None`` so
the caller recompiles from the model file."""

import json

from repro.core.functions import ConstantStr
from repro.core.program import Program
from repro.pipeline.oracle import FORWARD
from repro.serve import (
    ApplyEngine,
    BundleIndex,
    CompiledIndex,
    ModelRegistry,
    TransformationModel,
    build_bundle,
    build_index,
    sidecar_path,
    try_load_index,
    write_sidecar,
)
from repro.serve.bundle import BundleRegistry
from repro.serve.model import ConfirmedGroup, ConfirmedMember
from repro.serve.sidecar import (
    INDEX_SCHEMA_VERSION,
    build_bundle_index,
    model_fingerprint,
)


def make_model(rules, name="m", column="addr"):
    groups = [
        ConfirmedGroup(
            Program((ConstantStr(rhs),)),
            FORWARD,
            (ConfirmedMember(lhs, rhs, whole=True),),
        )
        for lhs, rhs in rules
    ]
    return TransformationModel(name=name, column=column, groups=groups)


RULES = [("st", "street"), ("rd", "road"), ("ave", "avenue")]


class TestRoundTrip:
    def test_save_load_preserves_compiled_structures(self, tmp_path):
        model = make_model(RULES)
        index = build_index(model)
        path = index.save(tmp_path / "v1.index.json")
        loaded = CompiledIndex.load(path)
        assert loaded.fingerprint == index.fingerprint
        assert loaded.column == index.column
        assert loaded.exact == index.exact
        assert loaded.token_rules == index.token_rules
        assert loaded.programs == index.programs
        assert loaded.groups_compiled == len(model.groups)
        assert loaded.matches(model)

    def test_engine_from_sidecar_equals_cold_compile(self, tmp_path):
        model = make_model(RULES)
        index = build_index(model)
        cold = ApplyEngine(model)
        warm = ApplyEngine(model, precompiled=index)
        assert warm.exact == cold.exact
        assert warm.token_rules == cold.token_rules
        assert dict(warm.programs) == dict(cold.programs)
        sample = [lhs for lhs, _ in RULES] + ["unseen value"]
        assert warm.apply_values(sample) == cold.apply_values(sample)
        assert warm.stats().sidecar_loads == 1
        assert warm.stats().sidecar_misses == 0
        assert cold.stats().sidecar_loads == 0

    def test_mismatched_index_counts_a_miss_and_recompiles(self):
        model = make_model(RULES)
        other = build_index(make_model([("blvd", "boulevard")]))
        engine = ApplyEngine(model, precompiled=other)
        assert engine.stats().sidecar_loads == 0
        assert engine.stats().sidecar_misses == 1
        # ... but compiled correctly from the model anyway.
        assert engine.apply_values(["st"]) == ["street"]


class TestFingerprint:
    def test_ignores_mutable_metadata(self):
        a = make_model(RULES, name="first")
        b = make_model(RULES, name="second")
        assert model_fingerprint(a) == model_fingerprint(b)
        assert build_index(a).matches(b)

    def test_covers_the_rules(self):
        a = make_model(RULES)
        b = make_model(RULES + [("blvd", "boulevard")])
        assert model_fingerprint(a) != model_fingerprint(b)
        assert not build_index(a).matches(b)

    def test_covers_the_column(self):
        index = build_index(make_model(RULES, column="addr"))
        assert not index.matches(make_model(RULES, column="title"))


class TestTryLoadIndex:
    def test_missing_sidecar_is_none(self, tmp_path):
        model = make_model(RULES)
        path = model.save(tmp_path / "v1.json")
        assert try_load_index(path, model) is None

    def test_happy_path(self, tmp_path):
        model = make_model(RULES)
        path = model.save(tmp_path / "v1.json")
        write_sidecar(model, path)
        index = try_load_index(path, model)
        assert isinstance(index, CompiledIndex)
        assert index.matches(model)

    def test_torn_sidecar_is_none(self, tmp_path):
        model = make_model(RULES)
        path = model.save(tmp_path / "v1.json")
        blob = write_sidecar(model, path).read_text(encoding="utf-8")
        sidecar_path(path).write_text(
            blob[: len(blob) // 2], encoding="utf-8"
        )
        assert try_load_index(path, model) is None

    def test_foreign_kind_is_none(self, tmp_path):
        model = make_model(RULES)
        path = model.save(tmp_path / "v1.json")
        payload = build_index(model).to_dict()
        payload["kind"] = "somebody.elses.index"
        sidecar_path(path).write_text(
            json.dumps(payload), encoding="utf-8"
        )
        assert try_load_index(path, model) is None

    def test_newer_schema_is_none(self, tmp_path):
        model = make_model(RULES)
        path = model.save(tmp_path / "v1.json")
        payload = build_index(model).to_dict()
        payload["schema_version"] = INDEX_SCHEMA_VERSION + 1
        sidecar_path(path).write_text(
            json.dumps(payload), encoding="utf-8"
        )
        assert try_load_index(path, model) is None

    def test_stale_fingerprint_is_none(self, tmp_path):
        # The model file was edited after publish: the sidecar no
        # longer describes it and must be ignored.
        model = make_model(RULES)
        path = model.save(tmp_path / "v1.json")
        write_sidecar(model, path)
        edited = make_model(RULES + [("blvd", "boulevard")])
        assert try_load_index(path, edited) is None


class TestAtomicWrite:
    def test_no_temp_files_survive(self, tmp_path):
        index = build_index(make_model(RULES))
        index.save(tmp_path / "v1.index.json")
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == ["v1.index.json"]

    def test_sidecar_path_shape(self):
        assert sidecar_path("models/addr/v3.json").name == "v3.index.json"


class TestRegistryIntegration:
    def test_save_publishes_a_sidecar_by_default(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        path = registry.save(make_model(RULES), "addr")
        assert sidecar_path(path).exists()

    def test_save_sidecar_false_skips_it(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        path = registry.save(make_model(RULES), "addr", sidecar=False)
        assert not sidecar_path(path).exists()

    def test_sidecars_are_invisible_to_versions(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(make_model(RULES), "addr")
        registry.save(make_model(RULES), "addr")
        assert registry.versions("addr") == [1, 2]

    def test_load_with_index_returns_the_pair(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        model = make_model(RULES)
        registry.save(model, "addr")
        loaded, index = registry.load_with_index("addr")
        assert isinstance(index, CompiledIndex)
        assert index.matches(loaded)

    def test_load_with_index_without_sidecar_is_none(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(make_model(RULES), "addr", sidecar=False)
        loaded, index = registry.load_with_index("addr")
        assert index is None
        assert loaded.column == "addr"


class TestBundleIndex:
    def make_bundle(self):
        return build_bundle(
            {
                "addr": make_model(RULES, column="addr"),
                "title": make_model(
                    [("intl", "international")], column="title"
                ),
            },
            "golden",
        )

    def test_roundtrip(self, tmp_path):
        bundle = self.make_bundle()
        index = build_bundle_index(bundle)
        path = index.save(tmp_path / "v1.index.json")
        loaded = BundleIndex.load(path)
        assert set(loaded.columns) == {"addr", "title"}
        assert loaded.matches(bundle)

    def test_matches_requires_the_same_column_set(self, tmp_path):
        bundle = self.make_bundle()
        index = build_bundle_index(bundle)
        partial = build_bundle(
            {"addr": make_model(RULES, column="addr")}, "golden"
        )
        assert not index.matches(partial)

    def test_try_load_index_dispatches_on_artifact_shape(self, tmp_path):
        bundle = self.make_bundle()
        registry = BundleRegistry(tmp_path)
        path = registry.save(bundle, "golden")
        loaded = registry.load("golden")
        index = try_load_index(path, loaded)
        assert isinstance(index, BundleIndex)
        assert index.matches(loaded)
