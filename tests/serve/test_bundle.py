"""Multi-column model bundles: atomic persistence + record-level apply."""

import json

import pytest

from repro.core.functions import ConstantStr
from repro.core.program import Program
from repro.pipeline.oracle import FORWARD
from repro.serve import (
    BundleApplyEngine,
    BundleRegistry,
    ModelBundle,
    TransformationModel,
    build_bundle,
)
from repro.serve.bundle import BUNDLE_KIND, BUNDLE_SCHEMA_VERSION
from repro.serve.model import ConfirmedGroup, ConfirmedMember


def make_model(rules, name="m", column="addr"):
    groups = [
        ConfirmedGroup(
            Program((ConstantStr(rhs),)),
            FORWARD,
            (ConfirmedMember(lhs, rhs, whole=True),),
        )
        for lhs, rhs in rules
    ]
    return TransformationModel(name=name, column=column, groups=groups)


def make_bundle(name="golden"):
    return build_bundle(
        {
            "addr": make_model([("st", "street")], column="addr"),
            "title": make_model(
                [("intl", "international")], column="title"
            ),
        },
        name,
        provenance={"batches": 2},
    )


class TestRoundTrip:
    def test_save_load_round_trips(self, tmp_path):
        bundle = make_bundle()
        path = bundle.save(tmp_path / "b.json")
        loaded = ModelBundle.load(path)
        assert loaded.to_dict() == bundle.to_dict()
        assert loaded.columns == ["addr", "title"]
        assert loaded.provenance == {"batches": 2}

    def test_rejects_foreign_kinds(self, tmp_path):
        model = make_model([("a", "b")])
        path = model.save(tmp_path / "model.json")
        with pytest.raises(ValueError, match="not a model bundle"):
            ModelBundle.load(path)

    def test_rejects_newer_schema(self):
        payload = make_bundle().to_dict()
        payload["schema_version"] = BUNDLE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported bundle schema"):
            ModelBundle.from_dict(payload)

    def test_kind_marker_written(self, tmp_path):
        path = make_bundle().save(tmp_path / "b.json")
        payload = json.loads(path.read_text())
        assert payload["kind"] == BUNDLE_KIND

    def test_column_order_preserved(self):
        payload = make_bundle().to_dict()
        rebuilt = ModelBundle.from_dict(payload)
        assert rebuilt.columns == ["addr", "title"]
        # Unlisted models trail the pinned order, never dropped.
        payload["columns"] = ["title"]
        rebuilt = ModelBundle.from_dict(payload)
        assert rebuilt.columns == ["title", "addr"]

    def test_save_is_atomic_no_temp_left_behind(self, tmp_path):
        bundle = make_bundle()
        target = tmp_path / "b.json"
        bundle.save(target)
        bundle.save(target)  # overwrite is fine
        leftovers = [
            p for p in tmp_path.iterdir() if p.name != "b.json"
        ]
        assert leftovers == []

    def test_describe_mentions_columns_and_groups(self):
        text = make_bundle().describe()
        assert "2 columns" in text
        assert "addr" in text and "title" in text


class TestBundleRegistry:
    def test_versions_monotone_and_loadable(self, tmp_path):
        registry = BundleRegistry(tmp_path)
        registry.save(make_bundle(), "g")
        registry.save(make_bundle(), "g")
        assert registry.versions("g") == [1, 2]
        loaded = registry.load("g")
        assert isinstance(loaded, ModelBundle)
        assert loaded.columns == ["addr", "title"]

    def test_load_specific_version(self, tmp_path):
        registry = BundleRegistry(tmp_path)
        bundle = make_bundle()
        registry.save(bundle, "g")
        registry.save(bundle, "g")
        assert registry.load("g", 1).to_dict() == (
            registry.load("g", 2).to_dict()
        )

    def test_rejects_single_column_model_files(self, tmp_path):
        """A model file in the bundle tree fails loudly, not half-read."""
        registry = BundleRegistry(tmp_path)
        (tmp_path / "g").mkdir()
        make_model([("a", "b")]).save(tmp_path / "g" / "v1.json")
        with pytest.raises(ValueError, match="not a model bundle"):
            registry.load("g")


class TestBundleApplyEngine:
    def test_apply_record_standardizes_every_column(self):
        engine = BundleApplyEngine(make_bundle())
        out = engine.apply_record(
            {"addr": "st", "title": "intl", "other": "x"}
        )
        assert out == {
            "addr": "street",
            "title": "international",
            "other": "x",
        }

    def test_apply_record_returns_a_copy(self):
        engine = BundleApplyEngine(make_bundle())
        values = {"addr": "st"}
        engine.apply_record(values)
        assert values == {"addr": "st"}

    def test_apply_column_unknown_passes_through(self):
        engine = BundleApplyEngine(make_bundle())
        assert engine.apply_column("nope", ["a", "b"]) == ["a", "b"]
        assert engine.apply_column("addr", ["st", "z"]) == ["street", "z"]

    def test_reload_flips_all_columns_at_once(self):
        engine = BundleApplyEngine(make_bundle())
        grown = build_bundle(
            {
                "addr": make_model(
                    [("st", "street"), ("rd", "road")], column="addr"
                ),
                "title": make_model(
                    [("intl", "international"), ("j", "journal")],
                    column="title",
                ),
            },
            "golden",
        )
        before = {c: engine.engine(c) for c in engine.columns}
        engine.reload(grown)
        # Grown columns reuse their engine objects (incremental
        # recompile), and both columns serve the new rules.
        assert engine.engine("addr") is before["addr"]
        assert engine.engine("title") is before["title"]
        assert engine.apply_record({"addr": "rd", "title": "j"}) == {
            "addr": "road",
            "title": "journal",
        }

    def test_reload_adds_and_drops_columns(self):
        engine = BundleApplyEngine(make_bundle())
        swapped = build_bundle(
            {
                "addr": make_model([("st", "street")], column="addr"),
                "authors": make_model([("j.", "john")], column="authors"),
            },
            "golden",
        )
        engine.reload(swapped)
        assert engine.columns == ["addr", "authors"]
        assert engine.apply_column("title", ["intl"]) == ["intl"]
        assert engine.apply_column("authors", ["j."]) == ["john"]

    def test_stats_per_column(self):
        engine = BundleApplyEngine(make_bundle())
        engine.apply_record({"addr": "st", "title": "zzz"})
        stats = engine.stats()
        assert set(stats) == {"addr", "title"}
        assert stats["addr"]["exact_hits"] == 1
        assert stats["title"]["misses"] == 1
