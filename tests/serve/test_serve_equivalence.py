"""Serve == offline equivalence: the network tier must answer
byte-identically to :meth:`ApplyEngine.apply_values` run offline
against whichever model version the reply claims — including while
versions are being hot-swapped under the requests.
"""

import asyncio

from repro.serve import ApplyEngine, ModelRegistry, ModelSource

from harness import ServeClient, start_test_server


def run(coro):
    return asyncio.run(coro)


def test_served_answers_match_offline_engine(
    learned_model, address_dataset
):
    offline = ApplyEngine(learned_model)
    values = list(
        address_dataset.fresh_table().column_values(address_dataset.column)
    )[:300]

    async def scenario():
        server = await start_test_server(ModelSource(model=learned_model))
        try:
            async with await ServeClient.connect(*server.address) as client:
                reply = await client.rpc(op="apply", values=values)
                assert reply["ok"]
                assert reply["values"] == offline.apply_values(values)
                for value in values[:25]:
                    one = await client.rpc(op="apply", value=value)
                    assert one["value"] == offline.transform(value)
        finally:
            await server.stop()

    run(scenario())


def test_responses_after_hot_swap_equal_a_fresh_engine(
    learned_model, identity_model, changing_values, tmp_path
):
    registry = ModelRegistry(tmp_path / "reg")
    registry.save(learned_model, "addr")

    async def scenario():
        server = await start_test_server(
            ModelSource(registry=registry, name="addr", ttl=60.0),
            follow=True,
            poll_interval=0.05,
        )
        try:
            async with await ServeClient.connect(*server.address) as client:
                before = await client.rpc(op="apply", values=changing_values)
                assert before["version"] == 1
                assert before["values"] == ApplyEngine(
                    learned_model
                ).apply_values(changing_values)

                registry.save(identity_model, "addr")
                for _ in range(100):
                    await asyncio.sleep(0.05)
                    if (await client.rpc(op="ping"))["version"] == 2:
                        break
                after = await client.rpc(op="apply", values=changing_values)
                assert after["version"] == 2
                # Exactly what a fresh engine over the fresh load gives.
                fresh = ApplyEngine(registry.load("addr", 2))
                assert after["values"] == fresh.apply_values(changing_values)
                # ...and visibly different from v1 (the swap is real).
                assert after["values"] != before["values"]
        finally:
            await server.stop()

    run(scenario())


def test_no_torn_reads_mix_versions_within_one_batch(
    learned_model, identity_model, changing_values, tmp_path
):
    """Requests hammered across many hot swaps: every reply must equal
    the offline output of the single version it claims — a reply mixing
    two versions' outputs matches neither and fails."""
    registry = ModelRegistry(tmp_path / "reg")
    registry.save(learned_model, "addr")
    models = {1: learned_model}
    values = changing_values
    expected = {
        True: ApplyEngine(learned_model).apply_values(values),
        False: ApplyEngine(identity_model).apply_values(values),
    }
    assert expected[True] != expected[False]

    async def scenario():
        server = await start_test_server(
            ModelSource(registry=registry, name="addr", ttl=60.0),
            follow=True,
            poll_interval=0.02,
        )

        async def publisher():
            # Alternate learned/identity publishes under the load.
            for i in range(12):
                model = identity_model if i % 2 == 0 else learned_model
                path = registry.save(model, "addr")
                models[int(path.stem[1:])] = model
                await asyncio.sleep(0.04)

        try:
            async with await ServeClient.connect(*server.address) as client:
                publish_task = asyncio.create_task(publisher())
                seen_versions = set()
                while not publish_task.done():
                    reply = await client.rpc(op="apply", values=values)
                    assert reply["ok"]
                    version = reply["version"]
                    seen_versions.add(version)
                    is_learned = models[version] is learned_model
                    assert reply["values"] == expected[is_learned], (
                        f"reply at claimed version {version} does not "
                        "match that version's offline output"
                    )
                await publish_task
                assert len(seen_versions) >= 2, (
                    "load never observed a swap; publisher too slow "
                    f"(saw {seen_versions})"
                )
        finally:
            await server.stop()

    run(scenario())
