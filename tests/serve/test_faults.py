"""Fault-injection tests: the serving tier under hostile conditions.

Every scenario here is a thing that happens in production — clients
that vanish, drip, or flood; publishers that crash mid-write; a server
SIGKILLed mid-request — and the assertion is always the same shape:
the durable artifacts (registry, metrics file, delta log) stay
readable and the survivors keep getting correct answers.
"""

import asyncio
import json

from repro.obs.summary import iter_rows, validate_rows
from repro.serve import ApplyEngine, ModelRegistry, ModelSource

from harness import FaultInjector, ServeClient, spawn_cli_server, start_test_server, stop_cli_server


def run(coro):
    return asyncio.run(coro)


async def _settled(predicate, timeout=5.0, interval=0.02):
    """Poll an async-loop-friendly condition until true or timeout."""
    for _ in range(int(timeout / interval)):
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


def test_vanishing_clients_leave_the_server_serving(learned_model):
    async def scenario():
        server = await start_test_server(ModelSource(model=learned_model))
        injector = FaultInjector(*server.address)
        try:
            for _ in range(5):
                await injector.abort_mid_request()
                await injector.disconnect_after_request(
                    {"op": "apply", "values": ["9th St"] * 50}
                )
            # Every aborted connection unwinds to closed state.
            assert await _settled(
                lambda: server._m_conns_closed.value
                == server._m_conns_opened.value
            ), "aborted connections never closed out"
            assert server._m_conns.value == 0
            # And a well-behaved client is entirely unaffected.
            async with await ServeClient.connect(*server.address) as client:
                reply = await client.rpc(op="apply", value="9th St")
                assert reply["ok"]
        finally:
            await server.stop()

    run(scenario())


def test_slow_loris_is_cut_off_while_fast_clients_proceed(learned_model):
    async def scenario():
        server = await start_test_server(
            ModelSource(model=learned_model), idle_timeout=0.3
        )
        injector = FaultInjector(*server.address)
        try:
            # ~40 bytes at 2 bytes per 60ms ≈ 1.2s > the 0.3s deadline:
            # the server must cut the drip off, not wait forever.
            loris = asyncio.create_task(
                injector.slow_loris(
                    {"op": "apply", "value": "9th St"}, chunk=2, delay=0.06
                )
            )
            async with await ServeClient.connect(*server.address) as client:
                for _ in range(10):
                    assert (await client.rpc(op="ping"))["ok"]
            assert await loris is None, "slow loris was served anyway"
            idle = server.obs.metrics.counter(
                "serve.idle_closes", deterministic=False
            )
            assert idle.value >= 1
        finally:
            await server.stop()

    run(scenario())


def test_oversized_request_one_error_reply_then_close(learned_model):
    async def scenario():
        server = await start_test_server(
            ModelSource(model=learned_model), max_request_bytes=4096
        )
        injector = FaultInjector(*server.address)
        try:
            reply = await injector.oversized(64 * 1024)
            assert not reply["ok"] and "too large" in reply["error"]
            assert server._m_oversized.value == 1
            # Under the limit still flows on a fresh connection.
            async with await ServeClient.connect(*server.address) as client:
                ok = await client.rpc(op="apply", value="x" * 1024)
                assert ok["ok"]
        finally:
            await server.stop()

    run(scenario())


def test_torn_publish_is_skipped_and_recovery_swaps_forward(
    learned_model, tmp_path
):
    registry = ModelRegistry(tmp_path / "reg")
    registry.save(learned_model, "addr")

    async def scenario():
        server = await start_test_server(
            ModelSource(registry=registry, name="addr", ttl=60.0),
            follow=True,
            poll_interval=0.05,
        )
        try:
            async with await ServeClient.connect(*server.address) as client:
                assert (await client.rpc(op="ping"))["version"] == 1
                # A publisher crash leaves a half-written v2 behind.
                FaultInjector.torn_publish(tmp_path / "reg", "addr")
                await asyncio.sleep(0.3)
                reply = await client.rpc(op="apply", value="9th St")
                assert reply["ok"] and reply["version"] == 1
                assert server.source.load_errors >= 1
                # The next *completed* publish (v3 — the torn file
                # claimed v2's number) swaps in despite the wreck.
                registry.save(learned_model, "addr")
                assert await _settled(
                    lambda: server.source.current()[0] == 3
                ), "recovery publish never swapped in"
                assert (await client.rpc(op="ping"))["version"] == 3
        finally:
            await server.stop()

    run(scenario())


def test_sigkill_mid_request_leaves_artifacts_usable(
    learned_model, tmp_path
):
    """SIGKILL a real `repro serve --listen` subprocess while a request
    is in flight; the registry and the metrics file must both remain
    readable, and a restarted server must serve from them unchanged."""
    registry_root = tmp_path / "reg"
    ModelRegistry(registry_root).save(learned_model, "addr")
    metrics_path = tmp_path / "serve-metrics.jsonl"
    args = [
        "--registry",
        str(registry_root),
        "--name",
        "addr",
        "--metrics",
        str(metrics_path),
        "--snapshot-interval",
        "0.05",
    ]
    proc, host, port = spawn_cli_server(args)
    try:

        async def first_life():
            async with await ServeClient.connect(host, port) as client:
                for _ in range(5):
                    assert (await client.rpc(op="ping"))["ok"]
                # Leave a big batch in flight, then pull the plug.
                await client.send_raw(
                    (
                        json.dumps(
                            {"op": "apply", "values": ["9th St"] * 5000}
                        )
                        + "\n"
                    ).encode()
                )
                FaultInjector.kill(proc)

        run(first_life())
    finally:
        stop_cli_server(proc)

    # The metrics file survived the kill: every complete row parses
    # and conforms to the documented schema (a torn final line is the
    # recognized crash signature and is tolerated).
    rows = list(iter_rows(metrics_path))
    assert rows and rows[0]["type"] == "meta"
    assert validate_rows(rows) == []

    # The registry survived too: a second life serves the same model.
    proc2, host2, port2 = spawn_cli_server(args)
    try:

        async def second_life():
            async with await ServeClient.connect(host2, port2) as client:
                reply = await client.rpc(op="apply", value="9th St")
                assert reply["ok"] and reply["version"] == 1
                offline = ApplyEngine(
                    ModelRegistry(registry_root).load("addr")
                )
                assert reply["value"] == offline.transform("9th St")
                bye = await client.rpc(op="shutdown")
                assert bye["ok"]

        run(second_life())
        proc2.wait(timeout=10)
        assert proc2.returncode == 0
    finally:
        stop_cli_server(proc2)

    # After the clean shutdown the metrics file (appended by the
    # second life) still validates end-to-end.
    rows = list(iter_rows(metrics_path))
    assert validate_rows(rows) == []
    assert any(row["type"] == "snapshot" for row in rows)
