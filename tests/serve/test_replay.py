"""The acceptance property of the serve subsystem: applying a saved
model to a fresh sample of the same dataset reproduces the learner's
cell changes exactly — learn once, reuse forever."""

from repro.serve import ModelReplayer, TransformationModel


class TestExactReplay:
    def test_replay_reproduces_learner_cell_for_cell(
        self, learned, address_dataset
    ):
        learned_table, _, model = learned
        fresh = address_dataset.fresh_table()
        report = ModelReplayer(model).apply(fresh)
        assert fresh.column_values(address_dataset.column) == (
            learned_table.column_values(address_dataset.column)
        )
        assert report.cells_changed == model.cells_changed

    def test_replay_after_json_round_trip(self, learned, address_dataset):
        learned_table, _, model = learned
        revived = TransformationModel.from_dict(model.to_dict())
        fresh = address_dataset.fresh_table()
        ModelReplayer(revived).apply(fresh)
        assert fresh.column_values(address_dataset.column) == (
            learned_table.column_values(address_dataset.column)
        )

    def test_report_counts(self, learned, address_dataset):
        _, _, model = learned
        fresh = address_dataset.fresh_table()
        report = ModelReplayer(model).apply(fresh)
        assert report.groups_applied == model.groups_confirmed
        assert report.replacements_applied == (
            model.replacements_confirmed
        )
