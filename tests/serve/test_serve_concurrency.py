"""Concurrency regression: N asyncio clients hammer batch-apply while
``--follow`` hot swaps land underneath them.  Zero requests may be
dropped, every reply must be version-consistent, and the deterministic
``serve.*`` counters must land on exact, load-independent totals.
"""

import asyncio

from repro.serve import ApplyEngine, ModelRegistry, ModelSource

from harness import ServeClient, start_test_server

CLIENTS = 8
REQUESTS_PER_CLIENT = 25


def test_hammering_clients_during_hot_swaps_drop_nothing(
    learned_model, identity_model, changing_values, tmp_path
):
    registry = ModelRegistry(tmp_path / "reg")
    registry.save(learned_model, "addr")
    models = {1: learned_model}
    values = changing_values
    expected = {
        id(learned_model): ApplyEngine(learned_model).apply_values(values),
        id(identity_model): ApplyEngine(identity_model).apply_values(values),
    }

    async def scenario():
        server = await start_test_server(
            ModelSource(registry=registry, name="addr", ttl=60.0),
            follow=True,
            poll_interval=0.02,
        )

        async def publisher():
            for i in range(10):
                model = identity_model if i % 2 == 0 else learned_model
                path = registry.save(model, "addr")
                models[int(path.stem[1:])] = model
                await asyncio.sleep(0.03)

        async def hammer(client_index):
            """One client's full session; returns its replies."""
            replies = []
            async with await ServeClient.connect(*server.address) as client:
                for i in range(REQUESTS_PER_CLIENT):
                    request_id = f"c{client_index}-r{i}"
                    reply = await client.rpc(
                        op="apply", values=values, id=request_id
                    )
                    replies.append((request_id, reply))
            return replies

        try:
            publish_task = asyncio.create_task(publisher())
            sessions = await asyncio.gather(
                *(hammer(i) for i in range(CLIENTS))
            )
            await publish_task

            versions_seen = set()
            for replies in sessions:
                # Zero dropped: every request answered, in order.
                assert len(replies) == REQUESTS_PER_CLIENT
                for request_id, reply in replies:
                    assert reply["ok"], reply
                    assert reply["id"] == request_id
                    version = reply["version"]
                    versions_seen.add(version)
                    assert reply["values"] == expected[id(models[version])]
            assert len(versions_seen) >= 2, (
                f"no swap observed under load (saw {versions_seen})"
            )

            # Deterministic counter totals: exact, not approximate.
            total = CLIENTS * REQUESTS_PER_CLIENT
            assert server._m_requests.value == total
            assert server._m_replies_ok.value == total
            assert server._m_replies_err.value == 0
            assert server._m_conns_opened.value == CLIENTS
            for _ in range(100):
                if server._m_conns_closed.value == CLIENTS:
                    break
                await asyncio.sleep(0.02)
            assert server._m_conns_closed.value == CLIENTS
            assert server._m_latency.count == total

            # The deterministic snapshot view carries the same totals.
            snapshot = server.obs.metrics.snapshot(deterministic_only=True)
            assert snapshot["serve.requests"] == total
            assert snapshot["serve.replies{ok=true}"] == total
            assert snapshot["serve.replies{ok=false}"] == 0
        finally:
            await server.stop()

    asyncio.run(scenario())
