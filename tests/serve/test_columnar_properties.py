"""Property suite for the columnar apply core.

The one guarantee everything else rides on: dictionary-encoded
per-distinct-value application is **byte-identical** to transforming
every row one at a time with no memoization — across batch shapes,
intern-table caps (including pathological ones that truncate every
batch), interleaved single-value calls, and hot reloads mid-stream."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.functions import ConstantStr
from repro.core.program import Program
from repro.pipeline.oracle import FORWARD
from repro.serve import (
    ApplyEngine,
    BundleApplyEngine,
    TransformationModel,
    build_bundle,
    build_index,
)
from repro.serve.model import ConfirmedGroup, ConfirmedMember

SMALL = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_model(rules, name="m", column="addr"):
    groups = [
        ConfirmedGroup(
            Program((ConstantStr(rhs),)),
            FORWARD,
            (ConfirmedMember(lhs, rhs, whole=True),),
        )
        for lhs, rhs in rules
    ]
    return TransformationModel(name=name, column=column, groups=groups)


RULES = [
    ("st", "street"),
    ("rd", "road"),
    ("ave", "avenue"),
    ("blvd", "boulevard"),
]
MODEL = make_model(RULES)

#: Batches draw from rule left-hand sides (hit the rules), their
#: outputs (exercise chain detection), and arbitrary text (miss).
values_strategy = st.lists(
    st.one_of(
        st.sampled_from(
            [lhs for lhs, _ in RULES] + [rhs for _, rhs in RULES]
        ),
        st.text(max_size=8),
    ),
    max_size=20,
)
batches_strategy = st.lists(values_strategy, max_size=6)


def oracle(model, values):
    """The ground truth: a fresh unmemoized engine, one row at a time."""
    engine = ApplyEngine(model, cache_size=0, intern_size=0)
    return [engine.transform(v) for v in values]


@SMALL
@given(batches_strategy, st.sampled_from([0, 2, 1000]))
def test_columnar_equals_per_row_across_batches(batches, intern_size):
    engine = ApplyEngine(MODEL, intern_size=intern_size)
    for batch in batches:
        assert engine.apply_values(batch) == oracle(MODEL, batch)
        # The slot memo is exactly intern-aligned after every batch,
        # and truncation keeps the table at the cap.
        assert len(engine._slot_outputs) == len(engine._intern)
        assert len(engine._intern) <= intern_size


@SMALL
@given(
    st.lists(
        st.one_of(
            values_strategy.map(lambda vs: ("batch", vs)),
            st.sampled_from(
                [lhs for lhs, _ in RULES] + ["", "unseen"]
            ).map(lambda v: ("single", v)),
        ),
        max_size=10,
    )
)
def test_interleaved_transform_and_apply_values(ops):
    """Mixing the single-value path (LRU-backed) with the columnar
    path (intern-backed) never changes any output."""
    engine = ApplyEngine(MODEL, intern_size=2)
    for kind, payload in ops:
        if kind == "batch":
            assert engine.apply_values(payload) == oracle(MODEL, payload)
        else:
            assert engine.transform(payload) == oracle(MODEL, [payload])[0]


@SMALL
@given(batches_strategy, batches_strategy, st.integers(1, len(RULES)))
def test_incremental_reload_mid_stream(before, after, split):
    """An append-only publish swapped in mid-stream behaves exactly
    like an engine compiled from the extended model all along."""
    base = make_model(RULES[:split])
    extended = make_model(RULES)
    engine = ApplyEngine(base, intern_size=4)
    for batch in before:
        assert engine.apply_values(batch) == oracle(base, batch)
    assert engine.reload(extended) is True
    for batch in after:
        assert engine.apply_values(batch) == oracle(extended, batch)


@SMALL
@given(batches_strategy, batches_strategy)
def test_sidecar_swap_mid_stream(before, after):
    """A full (non-extension) swap installed from its sidecar serves
    the new model's outputs byte-identically, intern state intact."""
    swapped = make_model([("intl", "international"), ("dept", "department")])
    index = build_index(swapped)
    engine = ApplyEngine(MODEL, intern_size=4)
    for batch in before:
        engine.apply_values(batch)
    assert engine.reload(swapped, precompiled=index) is False
    assert engine.stats().sidecar_loads == 1
    assert engine.stats().sidecar_misses == 0
    for batch in after:
        assert engine.apply_values(batch) == oracle(swapped, batch)


@SMALL
@given(
    st.lists(
        st.fixed_dictionaries(
            {},
            optional={
                "addr": st.sampled_from(["st", "rd", "x"]),
                "title": st.sampled_from(["intl", "y"]),
                "other": st.text(max_size=4),
            },
        ),
        max_size=12,
    )
)
def test_bundle_records_match_per_column_oracles(records):
    """Record-level bundle application is exactly the per-column
    oracles applied field-wise; absent/foreign columns pass through."""
    models = {
        "addr": MODEL,
        "title": make_model([("intl", "international")], column="title"),
    }
    bundle = build_bundle(models, "golden")
    engine = BundleApplyEngine(bundle)
    for record in records:
        out = engine.apply_record(record)
        assert set(out) == set(record)
        for column, value in record.items():
            if column in models:
                assert out[column] == oracle(models[column], [value])[0]
            else:
                assert out[column] == value


def test_learned_model_columnar_identity(learned):
    """The real thing: the full learned Address model over its own
    dataset column, columnar vs unmemoized per-row — byte-identical,
    with the broadcast actually engaged on the duplicated rows."""
    table, _, model = learned
    values = list(table.column_values(model.column))
    engine = ApplyEngine(model)
    assert engine.apply_values(values) == oracle(model, values)
    stats = engine.stats()
    assert stats.distinct_values == len(set(values))
    assert stats.broadcast_rows == len(values) - len(set(values))
