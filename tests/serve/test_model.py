"""Model schema tests: building from a run, JSON round-trips, errors."""

import json

import pytest

from repro.core.program import Program
from repro.core.functions import ConstantStr
from repro.pipeline.oracle import FORWARD, REVERSE
from repro.serve.model import (
    MODEL_KIND,
    SCHEMA_VERSION,
    ConfirmedGroup,
    ConfirmedMember,
    TransformationModel,
)


class TestBuildModel:
    def test_only_approved_groups_kept(self, learned):
        _, log, model = learned
        assert model.groups_confirmed == log.groups_approved
        assert model.groups_confirmed > 0

    def test_cells_changed_matches_log(self, learned):
        _, log, model = learned
        assert model.cells_changed == log.cells_changed

    def test_decisions_audited_for_every_step(self, learned):
        _, log, model = learned
        decisions = model.provenance["decisions"]
        assert len(decisions) == log.groups_confirmed
        assert sum(1 for d in decisions if d["approved"]) == (
            log.groups_approved
        )

    def test_members_are_direction_resolved(self, learned):
        _, log, model = learned
        for step, group in zip(
            (s for s in log.steps if s.decision.approved), model.groups
        ):
            expected = [
                (
                    r.reversed()
                    if step.decision.direction == REVERSE
                    else r
                )
                for r in step.group.replacements
            ]
            assert [m.replacement for m in group.members] == expected

    def test_provenance_passthrough(self, learned_model):
        assert learned_model.provenance["dataset"] == "Address"
        assert learned_model.provenance["seed"] == 3


class TestRoundTrip:
    def test_json_round_trip_is_identity(self, learned_model):
        payload = json.loads(json.dumps(learned_model.to_dict()))
        again = TransformationModel.from_dict(payload)
        assert again.to_dict() == learned_model.to_dict()

    def test_save_load(self, learned_model, tmp_path):
        path = learned_model.save(tmp_path / "m.json")
        loaded = TransformationModel.load(path)
        assert loaded.to_dict() == learned_model.to_dict()
        assert loaded.column == learned_model.column

    def test_programs_survive_round_trip(self, learned_model):
        again = TransformationModel.from_dict(learned_model.to_dict())
        for before, after in zip(learned_model.groups, again.groups):
            assert before.program == after.program
            assert before.structure == after.structure


class TestValidation:
    def test_rejects_foreign_json(self):
        with pytest.raises(ValueError, match="not a transformation model"):
            TransformationModel.from_dict({"kind": "something-else"})

    def test_rejects_future_schema(self):
        with pytest.raises(ValueError, match="schema version"):
            TransformationModel.from_dict(
                {"kind": MODEL_KIND, "schema_version": SCHEMA_VERSION + 1}
            )

    def test_rejects_bad_direction(self):
        group = {
            "program": Program((ConstantStr("x"),)).to_dict(),
            "direction": "sideways",
            "members": [],
        }
        with pytest.raises(ValueError, match="direction"):
            ConfirmedGroup.from_dict(group)

    def test_member_defaults(self):
        member = ConfirmedMember.from_dict({"lhs": "a", "rhs": "b"})
        assert member.whole and not member.token
        assert member.cells_changed == 0

    def test_group_direction_default_is_forward(self):
        group = ConfirmedGroup.from_dict(
            {"program": {"functions": []}, "members": []}
        )
        assert group.direction == FORWARD
