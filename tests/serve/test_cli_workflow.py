"""End-to-end CLI workflow: ``learn`` writes a model, ``apply`` on a
fresh sample of the same dataset reproduces the standardizer's cell
changes exactly, and ``consolidate`` can emit models as a by-product."""

import pytest

from repro.cli import main
from repro.data.io import read_csv_clustered
from repro.datagen import DATASETS
from repro.pipeline.consolidate import GoldenRecordCreation
from repro.pipeline.oracle import GroundTruthOracle
from repro.pipeline.standardize import Standardizer
from repro.serve import ApplyEngine, TransformationModel

SCALE = "0.05"
SEED = "3"
BUDGET = "25"


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("models") / "address.model.json"
    code = main(
        [
            "learn",
            "--dataset",
            "Address",
            "--scale",
            SCALE,
            "--seed",
            SEED,
            "--budget",
            BUDGET,
            "--out",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestLearnApply:
    def test_learn_writes_a_loadable_model(self, model_path):
        model = TransformationModel.load(model_path)
        assert model.groups_confirmed > 0
        assert model.provenance["seed"] == 3
        assert model.provenance["dataset"] == "Address"

    def test_apply_reproduces_learner_exactly(self, model_path, tmp_path):
        out = tmp_path / "standardized.csv"
        code = main(
            [
                "apply",
                "--model",
                str(model_path),
                "--dataset",
                "Address",
                "--scale",
                SCALE,
                "--seed",
                SEED,
                "--out",
                str(out),
            ]
        )
        assert code == 0

        # Re-run the learner on an identical fresh table and compare
        # the applied CSV cell-for-cell.
        dataset = DATASETS["Address"](scale=float(SCALE), seed=int(SEED))
        table = dataset.fresh_table()
        standardizer = Standardizer(table, dataset.column)
        oracle = GroundTruthOracle(
            dataset.canonical, standardizer.store, seed=int(SEED)
        )
        standardizer.run(oracle, int(BUDGET))

        applied = read_csv_clustered(out)
        assert applied.column_values(dataset.column) == (
            table.column_values(dataset.column)
        )

    def test_apply_flat_csv_uses_engine(self, model_path, tmp_path):
        import csv

        source = tmp_path / "flat.csv"
        with open(source, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["address"])
            writer.writerow(["9th E Avenue, 33990 CA"])
        out = tmp_path / "flat_out.csv"
        code = main(
            [
                "apply",
                "--model",
                str(model_path),
                "--input",
                str(source),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()

    def test_apply_requires_a_model_source(self):
        with pytest.raises(SystemExit):
            main(["apply", "--dataset", "Address", "--scale", SCALE])


class TestSeedDeterminism:
    def test_unseeded_runs_print_their_seed(self, capsys):
        assert main(["stats", "--dataset", "JournalTitle", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "seed:" in out and "--seed" in out

    def test_seeded_runs_do_not_print_a_pick(self, capsys):
        assert (
            main(
                [
                    "stats",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--seed",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "picked at random" not in out

    def test_learn_records_printed_seed(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        assert (
            main(
                [
                    "learn",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--budget",
                    "5",
                    "--out",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        printed_seed = int(out.split("seed: ")[1].split()[0])
        model = TransformationModel.load(path)
        assert model.provenance["seed"] == printed_seed


class TestConsolidateEmitsModels:
    def test_collect_models(self):
        dataset = DATASETS["JournalTitle"](scale=0.03, seed=1)
        table = dataset.fresh_table()

        def oracle_factory(standardizer):
            return GroundTruthOracle(
                dataset.canonical, standardizer.store, seed=1
            )

        creation = GoldenRecordCreation(
            table,
            oracle_factory,
            budget_per_column=5,
            collect_models=True,
            dataset_name=dataset.name,
        )
        report = creation.run()
        assert set(report.models) == set(table.columns)
        model = report.models[dataset.column]
        assert model.name == f"{dataset.name}-{dataset.column}"
        assert model.groups_confirmed == (
            report.logs[dataset.column].groups_approved
        )
        # The by-product model is immediately servable.
        engine = ApplyEngine(model)
        assert isinstance(engine.transform("anything"), str)

    def test_models_off_by_default(self):
        dataset = DATASETS["JournalTitle"](scale=0.03, seed=1)
        creation = GoldenRecordCreation(
            dataset.fresh_table(),
            lambda s: GroundTruthOracle(dataset.canonical, s.store, seed=1),
            budget_per_column=2,
        )
        assert creation.run().models == {}
