"""Shared fixtures for the serve subsystem tests: one small learned
model per session, built from a real standardization run."""

import pytest

from repro.datagen import DATASETS
from repro.pipeline.oracle import GroundTruthOracle
from repro.pipeline.standardize import Standardizer
from repro.serve import build_model

SCALE = 0.05
SEED = 3
BUDGET = 25


@pytest.fixture(scope="session")
def address_dataset():
    return DATASETS["Address"](scale=SCALE, seed=SEED)


@pytest.fixture(scope="session")
def learned(address_dataset):
    """(standardized table, log, model) of one deterministic learn run."""
    dataset = address_dataset
    table = dataset.fresh_table()
    standardizer = Standardizer(table, dataset.column)
    oracle = GroundTruthOracle(dataset.canonical, standardizer.store, seed=SEED)
    log = standardizer.run(oracle, BUDGET)
    model = build_model(
        log,
        dataset.column,
        name="address",
        config=standardizer.config,
        vocabulary=standardizer.vocabulary,
        provenance={"dataset": dataset.name, "scale": SCALE, "seed": SEED},
    )
    return table, log, model


@pytest.fixture(scope="session")
def learned_model(learned):
    return learned[2]


@pytest.fixture(scope="session")
def identity_model(learned_model):
    """The learned model with every group stripped: same identity,
    different (no-op) behaviour — a v2 whose outputs visibly diverge
    from v1 wherever v1 standardizes, which is what the hot-swap
    equivalence tests need."""
    from repro.serve import TransformationModel

    payload = learned_model.to_dict()
    payload["groups"] = []
    return TransformationModel.from_dict(payload)


@pytest.fixture(scope="session")
def changing_values(learned_model):
    """Values the learned model actually rewrites (so a v1-vs-v2
    output difference is observable)."""
    from repro.serve import ApplyEngine

    engine = ApplyEngine(learned_model)
    values = sorted(
        {
            member.lhs
            for group in learned_model.groups
            for member in group.members
        }
    )
    changing = [v for v in values if engine.transform(v) != v]
    assert changing, "learned model rewrites nothing; fixtures too small"
    return changing
