"""Shared fixtures for the serve subsystem tests: one small learned
model per session, built from a real standardization run."""

import pytest

from repro.datagen import DATASETS
from repro.pipeline.oracle import GroundTruthOracle
from repro.pipeline.standardize import Standardizer
from repro.serve import build_model

SCALE = 0.05
SEED = 3
BUDGET = 25


@pytest.fixture(scope="session")
def address_dataset():
    return DATASETS["Address"](scale=SCALE, seed=SEED)


@pytest.fixture(scope="session")
def learned(address_dataset):
    """(standardized table, log, model) of one deterministic learn run."""
    dataset = address_dataset
    table = dataset.fresh_table()
    standardizer = Standardizer(table, dataset.column)
    oracle = GroundTruthOracle(dataset.canonical, standardizer.store, seed=SEED)
    log = standardizer.run(oracle, BUDGET)
    model = build_model(
        log,
        dataset.column,
        name="address",
        config=standardizer.config,
        vocabulary=standardizer.vocabulary,
        provenance={"dataset": dataset.name, "scale": SCALE, "seed": SEED},
    )
    return table, log, model


@pytest.fixture(scope="session")
def learned_model(learned):
    return learned[2]
