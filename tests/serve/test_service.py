"""JSON-lines worker protocol tests (in-memory streams)."""

import io
import json

import pytest

from repro.serve import ApplyEngine, serve_forever
from repro.serve.service import handle_request


@pytest.fixture
def engine(learned_model):
    return ApplyEngine(learned_model)


def run_session(engine, *requests):
    lines = "\n".join(
        r if isinstance(r, str) else json.dumps(r) for r in requests
    )
    out = io.StringIO()
    served = serve_forever(engine, io.StringIO(lines + "\n"), out)
    responses = [
        json.loads(line) for line in out.getvalue().splitlines()
    ]
    return served, responses


class TestProtocol:
    def test_ping(self, engine):
        _, (response,) = run_session(engine, {"op": "ping"})
        assert response == {"ok": True, "pong": True}

    def test_apply_single_value(self, engine):
        _, (response,) = run_session(
            engine, {"op": "apply", "value": "anything"}
        )
        assert response["ok"] is True
        assert isinstance(response["value"], str)

    def test_apply_batch_counts_changes(self, engine):
        _, (response,) = run_session(
            engine, {"op": "apply", "values": ["zzz", "zzz"]}
        )
        assert response["ok"] is True
        assert response["values"] == ["zzz", "zzz"]
        assert response["changed"] == 0

    def test_stats_reports_model_identity(self, engine, learned_model):
        _, (response,) = run_session(engine, {"op": "stats"})
        assert response["model"] == learned_model.name
        assert response["groups"] == learned_model.groups_confirmed
        assert "rows" in response["stats"]

    def test_shutdown_stops_the_loop(self, engine):
        served, responses = run_session(
            engine, {"op": "shutdown"}, {"op": "ping"}
        )
        assert served == 1
        assert responses == [{"ok": True, "bye": True}]

    def test_default_op_is_apply(self, engine):
        _, (response,) = run_session(engine, {"value": "x"})
        assert response["ok"] is True


class TestRobustness:
    def test_bad_json_keeps_serving(self, engine):
        served, responses = run_session(
            engine, "this is not json", {"op": "ping"}
        )
        assert served == 2
        assert responses[0]["ok"] is False
        assert responses[1] == {"ok": True, "pong": True}

    def test_non_object_request_rejected(self, engine):
        _, (response,) = run_session(engine, json.dumps([1, 2]))
        assert response["ok"] is False

    def test_unknown_op_rejected(self, engine):
        assert handle_request(engine, {"op": "explode"})["ok"] is False

    def test_apply_without_payload_rejected(self, engine):
        assert handle_request(engine, {"op": "apply"})["ok"] is False

    def test_non_string_values_rejected(self, engine):
        response = handle_request(
            engine, {"op": "apply", "values": ["ok", 7]}
        )
        assert response["ok"] is False

    def test_blank_lines_skipped(self, engine):
        served, responses = run_session(engine, "", {"op": "ping"}, "")
        assert served == 1
        assert len(responses) == 1
