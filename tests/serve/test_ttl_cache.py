"""Property tests for the TTL'd compiled-model cache.

The cache's promises (``repro.serve.service.TTLEngineCache``), checked
under hypothesis-generated interleavings of gets, publishes, silent
publishes, follow-poller stores, clock advances, and evictions:

* **publish consistency** — after a completed publish is notified,
  ``get`` never again serves anything older;
* **monotone reads** — served versions never go backwards, even when
  the loader momentarily does (the cached entry anchors the clamp, so
  evicting a name forgets its baseline — see ``evict_expired``);
* **bounded staleness** — a version completed more than one TTL ago is
  always visible, notified or not;
* **TTL-bounded eviction** — ``evict_expired`` removes exactly the
  entries whose TTL fully elapsed.

The clock is injected, so every interleaving is deterministic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import TTLEngineCache

TTL = 10.0

OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("advance"),
            st.floats(0.0, TTL * 1.5, allow_nan=False, allow_infinity=False),
        ),
        st.tuples(st.just("publish")),
        st.tuples(st.just("silent_publish")),
        st.tuples(st.just("store")),
        st.tuples(st.just("get")),
        st.tuples(st.just("evict")),
    ),
    max_size=60,
)


class RegistryWorld:
    """A model of an atomically-published registry: the loader always
    sees every *completed* version (what ``os.replace`` guarantees)."""

    def __init__(self):
        self.now = 0.0
        self.completed = 1
        self.history = [(0.0, 1)]  # (time, version) of each publish
        self.loader_calls = 0

    def clock(self):
        return self.now

    def loader(self, name, cached_version, cached_engine):
        self.loader_calls += 1
        if cached_version == self.completed:
            return cached_version, cached_engine
        return self.completed, f"engine-v{self.completed}"

    def publish(self):
        self.completed += 1
        self.history.append((self.now, self.completed))

    def completed_at(self, t):
        """The newest version whose publish finished by time ``t``."""
        return max((v for ts, v in self.history if ts <= t), default=0)


@settings(max_examples=200, deadline=None)
@given(OPS)
def test_cache_interleavings_never_serve_stale_or_backwards(ops):
    world = RegistryWorld()
    cache = TTLEngineCache(world.loader, ttl=TTL, clock=world.clock)
    last_notified = 0
    last_served = 0
    for op in ops:
        kind = op[0]
        if kind == "advance":
            world.now += op[1]
        elif kind == "publish":
            world.publish()
            cache.notify_publish("m", world.completed)
            last_notified = world.completed
        elif kind == "silent_publish":
            world.publish()
        elif kind == "store":
            cache.store("m", world.completed, f"engine-v{world.completed}")
            last_notified = max(last_notified, world.completed)
        elif kind == "evict":
            cache.evict_expired()
        elif kind == "get":
            version, engine = cache.get("m")
            # Publish consistency: never older than the last completed
            # publish the cache was told about.
            assert version >= last_notified
            # Monotone reads.
            assert version >= last_served
            # Bounded staleness: a version completed more than one TTL
            # ago is visible even if nobody notified the cache.
            assert version >= world.completed_at(world.now - TTL)
            # Never from the future, and the engine matches its version.
            assert version <= world.completed
            assert engine == f"engine-v{version}"
            last_served = version


@settings(max_examples=200, deadline=None)
@given(OPS, st.data())
def test_reads_stay_monotone_under_a_backwards_loader(ops, data):
    """Even a loader that travels backwards (listing glitches, slow
    NFS) never makes served versions regress — for as long as the
    cache holds the name's entry.  Eviction drops the cached entry
    that anchors the clamp, so it resets the monotone baseline (but
    never the publish floor, which ``store`` keeps raising)."""
    world = RegistryWorld()

    def glitchy_loader(name, cached_version, cached_engine):
        version = data.draw(
            st.integers(1, world.completed), label="loader_version"
        )
        return version, f"engine-v{version}"

    cache = TTLEngineCache(glitchy_loader, ttl=TTL, clock=world.clock)
    last_served = 0
    for op in ops:
        kind = op[0]
        if kind == "advance":
            world.now += op[1]
        elif kind in ("publish", "silent_publish"):
            world.publish()
        elif kind == "store":
            cache.store("m", world.completed, f"engine-v{world.completed}")
        elif kind == "evict":
            if cache.evict_expired():
                last_served = 0
        elif kind == "get":
            version, _engine = cache.get("m")
            assert version >= last_served
            last_served = version


def test_fresh_hits_skip_the_loader():
    world = RegistryWorld()
    cache = TTLEngineCache(world.loader, ttl=TTL, clock=world.clock)
    v1, e1 = cache.get("m")
    calls = world.loader_calls
    world.now += TTL  # exactly at the boundary: still fresh
    v2, e2 = cache.get("m")
    assert (v2, e2) == (v1, e1)
    assert e2 is e1
    assert world.loader_calls == calls
    world.now += 0.001  # past the TTL: must re-consult
    cache.get("m")
    assert world.loader_calls == calls + 1


def test_notified_publish_forces_refresh_before_ttl():
    world = RegistryWorld()
    cache = TTLEngineCache(world.loader, ttl=TTL, clock=world.clock)
    assert cache.get("m")[0] == 1
    world.publish()
    cache.notify_publish("m", world.completed)
    # No clock advance at all — the floor alone forces the reload.
    assert cache.get("m")[0] == 2


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.floats(0.0, TTL, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=8,
    ),
    st.floats(0.0, 3 * TTL, allow_nan=False, allow_infinity=False),
)
def test_eviction_respects_the_ttl_bound(load_gaps, final_gap):
    """After any load schedule, eviction drops exactly the entries
    older than the TTL and keeps every fresh one."""
    world = RegistryWorld()
    cache = TTLEngineCache(world.loader, ttl=TTL, clock=world.clock)
    loaded_at = {}
    for i, gap in enumerate(load_gaps):
        world.now += gap
        name = f"model-{i}"
        cache.get(name)
        loaded_at[name] = world.now
    world.now += final_gap
    cache.evict_expired()
    expected_alive = {
        name
        for name, t in loaded_at.items()
        if world.now - t <= TTL
    }
    assert len(cache) == len(expected_alive)
    for name in expected_alive:
        assert cache.peek(name) is not None


def test_store_same_or_older_version_only_refreshes_ttl():
    world = RegistryWorld()
    cache = TTLEngineCache(world.loader, ttl=TTL, clock=world.clock)
    v1, e1 = cache.get("m")
    world.now += TTL - 1.0
    # Re-storing the same version keeps the engine but renews the TTL.
    assert not cache.store("m", v1, object())
    assert cache.peek("m") == (v1, e1)
    world.now += 2.0  # would have expired without the refresh
    calls = world.loader_calls
    assert cache.get("m") == (v1, e1)
    assert world.loader_calls == calls
    # An older store never replaces a newer served version.
    world.publish()
    cache.store("m", world.completed, "engine-new")
    assert not cache.store("m", v1, "engine-old")
    assert cache.peek("m")[1] == "engine-new"


def test_nonpositive_ttl_is_rejected():
    with pytest.raises(ValueError):
        TTLEngineCache(lambda *a: (1, object()), ttl=0.0)
    with pytest.raises(ValueError):
        TTLEngineCache(lambda *a: (1, object()), ttl=-1.0)
