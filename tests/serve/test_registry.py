"""Registry tests: versioning, naming, lookup errors, atomic publish."""

import json

import pytest

from repro.serve import ModelRegistry, TransformationModel
from repro.serve.registry import slugify


class TestSlugify:
    def test_lowercases_and_collapses(self):
        assert slugify("Journal Title!") == "journal-title"

    def test_safe_chars_kept(self):
        assert slugify("addr_v2.base") == "addr_v2.base"

    def test_empty_falls_back(self):
        assert slugify("??") == "model"


class TestRegistry:
    def test_versions_increase(self, learned_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        first = registry.save(learned_model)
        second = registry.save(learned_model)
        assert first.name == "v1.json"
        assert second.name == "v2.json"
        assert registry.versions("address") == [1, 2]

    def test_load_latest_and_pinned(self, learned_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(learned_model)
        registry.save(learned_model)
        assert registry.load("address").to_dict() == (
            learned_model.to_dict()
        )
        assert registry.path("address").name == "v2.json"
        assert registry.path("address", 1).name == "v1.json"

    def test_catalog_lists_everything(self, learned_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(learned_model)
        registry.save(learned_model, name="Other Name")
        assert registry.catalog() == {
            "address": [1],
            "other-name": [1],
        }

    def test_missing_name_raises(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(FileNotFoundError, match="no model named"):
            registry.load("nope")

    def test_missing_version_raises(self, learned_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(learned_model)
        with pytest.raises(FileNotFoundError, match="no version 9"):
            registry.load("address", 9)

    def test_empty_root_is_empty(self, tmp_path):
        assert ModelRegistry(tmp_path / "missing").names() == []


class _CrashMidWrite(RuntimeError):
    pass


class TestAtomicPublish:
    """A crash mid-publish can never leave a truncated version file."""

    @pytest.fixture
    def crashing_dump(self, monkeypatch):
        """json.dump that writes half the payload, then dies — the
        worst-case interruption for a naive direct write."""

        def crash(obj, handle, **kwargs):
            handle.write(json.dumps(obj, **kwargs)[: 40])
            handle.flush()
            raise _CrashMidWrite("disk full / SIGKILL / power loss")

        monkeypatch.setattr("repro.serve.model.json.dump", crash)

    def test_interrupted_first_publish_leaves_nothing(
        self, learned_model, tmp_path, crashing_dump
    ):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(_CrashMidWrite):
            registry.save(learned_model)
        assert registry.versions("address") == []
        assert list((tmp_path / "address").glob("*")) == []  # no temp junk

    def test_interrupted_republish_preserves_previous_version(
        self, learned_model, tmp_path, monkeypatch
    ):
        registry = ModelRegistry(tmp_path)
        registry.save(learned_model)

        def crash(obj, handle, **kwargs):
            handle.write(json.dumps(obj, **kwargs)[: 40])
            raise _CrashMidWrite()

        monkeypatch.setattr("repro.serve.model.json.dump", crash)
        with pytest.raises(_CrashMidWrite):
            registry.save(learned_model)
        monkeypatch.undo()

        # v1 is intact and fully loadable; no v2, no leftovers.
        assert registry.versions("address") == [1]
        loaded = registry.load("address")
        assert loaded.to_dict() == learned_model.to_dict()
        assert sorted(p.name for p in (tmp_path / "address").glob("*")) == [
            "v1.index.json",
            "v1.json",
        ]

    def test_retry_after_interruption_succeeds(
        self, learned_model, tmp_path, monkeypatch
    ):
        registry = ModelRegistry(tmp_path)

        def crash(obj, handle, **kwargs):
            raise _CrashMidWrite()

        monkeypatch.setattr("repro.serve.model.json.dump", crash)
        with pytest.raises(_CrashMidWrite):
            registry.save(learned_model)
        monkeypatch.undo()
        registry.save(learned_model)
        assert registry.versions("address") == [1]

    def test_save_writes_through_temp_then_rename(
        self, learned_model, tmp_path
    ):
        """Direct-save sanity: the final artifact is complete JSON."""
        path = TransformationModel.save(learned_model, tmp_path / "m.json")
        assert path.name == "m.json"
        assert (
            TransformationModel.load(path).to_dict()
            == learned_model.to_dict()
        )
        assert list(tmp_path.glob(".m.json.tmp.*")) == []
