"""Registry tests: versioning, naming, lookup errors."""

import pytest

from repro.serve import ModelRegistry
from repro.serve.registry import slugify


class TestSlugify:
    def test_lowercases_and_collapses(self):
        assert slugify("Journal Title!") == "journal-title"

    def test_safe_chars_kept(self):
        assert slugify("addr_v2.base") == "addr_v2.base"

    def test_empty_falls_back(self):
        assert slugify("??") == "model"


class TestRegistry:
    def test_versions_increase(self, learned_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        first = registry.save(learned_model)
        second = registry.save(learned_model)
        assert first.name == "v1.json"
        assert second.name == "v2.json"
        assert registry.versions("address") == [1, 2]

    def test_load_latest_and_pinned(self, learned_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(learned_model)
        registry.save(learned_model)
        assert registry.load("address").to_dict() == (
            learned_model.to_dict()
        )
        assert registry.path("address").name == "v2.json"
        assert registry.path("address", 1).name == "v1.json"

    def test_catalog_lists_everything(self, learned_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(learned_model)
        registry.save(learned_model, name="Other Name")
        assert registry.catalog() == {
            "address": [1],
            "other-name": [1],
        }

    def test_missing_name_raises(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(FileNotFoundError, match="no model named"):
            registry.load("nope")

    def test_missing_version_raises(self, learned_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save(learned_model)
        with pytest.raises(FileNotFoundError, match="no version 9"):
            registry.load("address", 9)

    def test_empty_root_is_empty(self, tmp_path):
        assert ModelRegistry(tmp_path / "missing").names() == []
