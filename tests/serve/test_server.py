"""Core protocol tests for the asyncio network serving tier.

The contract under test (docs/serving.md): every accepted request gets
exactly one reply or a clean close; replies echo ``id``; malformed
input answers ``ok: false`` without killing the connection; bundle
mode serves per-column and whole-record applies against one version
snapshot; lookups and pushes track the golden delta log.
"""

import asyncio
import json

import pytest

from repro.serve import (
    ApplyEngine,
    BundleApplyEngine,
    ModelRegistry,
    ModelSource,
    build_bundle,
    parse_listen,
)
from repro.stream.deltas import GoldenDeltaLog

from harness import ServeClient, start_test_server


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def static_source(learned_model):
    return ModelSource(model=learned_model)


def test_ping_version_apply_roundtrip(static_source, learned_model):
    async def scenario():
        server = await start_test_server(static_source)
        try:
            async with await ServeClient.connect(*server.address) as client:
                pong = await client.rpc(op="ping", id=7)
                assert pong == {
                    "ok": True,
                    "pong": True,
                    "version": 1,
                    "id": 7,
                }
                version = await client.rpc(op="version")
                assert version["mode"] == "model"
                assert version["column"] == learned_model.column
                reply = await client.rpc(op="apply", value="9th St")
                assert reply["ok"] and reply["version"] == 1
                batch = await client.rpc(
                    op="apply", values=["9th St", "Main Street"]
                )
                assert batch["ok"] and len(batch["values"]) == 2
        finally:
            await server.stop()

    run(scenario())


def test_every_request_gets_exactly_one_reply(static_source):
    async def scenario():
        server = await start_test_server(static_source)
        try:
            async with await ServeClient.connect(*server.address) as client:
                n = 50
                payload = b"".join(
                    (json.dumps({"op": "ping", "id": i}) + "\n").encode()
                    for i in range(n)
                )
                # One write carrying 50 pipelined requests.
                await client.send_raw(payload)
                ids = [
                    (await client.read_json())["id"] for i in range(n)
                ]
                assert ids == list(range(n))
        finally:
            await server.stop()

    run(scenario())


def test_malformed_and_unknown_requests_answer_not_kill(static_source):
    async def scenario():
        server = await start_test_server(static_source)
        try:
            async with await ServeClient.connect(*server.address) as client:
                bad = await client.rpc(op="frobnicate")
                assert not bad["ok"] and "unknown op" in bad["error"]
                await client.send_raw(b"this is not json\n")
                parse = await client.read_json()
                assert not parse["ok"] and "bad request" in parse["error"]
                await client.send_raw(b'["a", "list"]\n')
                shape = await client.read_json()
                assert not shape["ok"]
                await client.send_raw(b"\n\n")  # blank lines are skipped
                still = await client.rpc(op="ping")
                assert still["ok"], "connection died after bad input"
        finally:
            await server.stop()

    run(scenario())


def test_partial_line_at_eof_is_a_clean_close(static_source):
    """A request never terminated by a newline was never accepted: the
    server closes without replying (and without counting a request)."""

    async def scenario():
        server = await start_test_server(static_source)
        try:
            client = await ServeClient.connect(*server.address)
            await client.send_raw(b'{"op": "ping"')
            client.writer.write_eof()
            tail = await asyncio.wait_for(client.reader.read(), 10.0)
            assert tail == b""
            await client.close()
            assert server._m_requests.value == 0
        finally:
            await server.stop()

    run(scenario())


def test_shutdown_op_stops_the_server(static_source):
    async def scenario():
        server = await start_test_server(static_source)
        client = await ServeClient.connect(*server.address)
        bye = await client.rpc(op="shutdown")
        assert bye["ok"] and bye["bye"]
        await asyncio.wait_for(server.wait_stopped(), 10.0)
        await server.stop()
        await client.close()
        with pytest.raises(OSError):
            await asyncio.wait_for(
                asyncio.open_connection(*server.address), 5.0
            )

    run(scenario())


def test_stats_and_metrics_ops(static_source):
    async def scenario():
        server = await start_test_server(static_source)
        try:
            async with await ServeClient.connect(*server.address) as client:
                for _ in range(3):
                    await client.rpc(op="apply", value="9th St")
                stats = await client.rpc(op="stats")
                assert stats["ok"]
                serve = stats["serve"]
                # The stats request itself is counted before dispatch.
                assert serve["requests"] == 4
                assert serve["replies_ok"] == 3
                assert serve["latency"]["count"] == 3
                assert serve["latency"]["p99"] >= serve["latency"]["p50"]
                assert "engine" in stats
                prom = await client.rpc(op="metrics")
                assert "serve_requests" in prom["prometheus"]
        finally:
            await server.stop()

    run(scenario())


def test_bundle_mode_column_record_and_unknown_column(
    learned_model, tmp_path
):
    bundle = build_bundle(
        {learned_model.column: learned_model}, name="addresses"
    )
    source = ModelSource(model=bundle)
    offline = BundleApplyEngine(bundle)
    column = learned_model.column

    async def scenario():
        server = await start_test_server(source)
        try:
            async with await ServeClient.connect(*server.address) as client:
                version = await client.rpc(op="version")
                assert version["mode"] == "bundle"
                assert version["columns"] == [column]
                one = await client.rpc(op="apply", column=column, value="9th St")
                assert one["value"] == offline.apply_column(column, ["9th St"])[0]
                many = await client.rpc(
                    op="apply", column=column, values=["9th St", "Elm"]
                )
                assert many["values"] == offline.apply_column(
                    column, ["9th St", "Elm"]
                )
                record = await client.rpc(
                    op="apply", record={column: "9th St", "city": "NYC"}
                )
                assert record["record"]["city"] == "NYC"
                assert record["record"][column] == one["value"]
                # The network tier refuses unknown columns instead of
                # silently passing them through.
                unknown = await client.rpc(
                    op="apply", column="nope", value="x"
                )
                assert not unknown["ok"] and "unknown column" in unknown["error"]
                missing = await client.rpc(op="apply")
                assert not missing["ok"]
        finally:
            await server.stop()

    run(scenario())


def test_lookup_and_subscribe_track_the_delta_log(learned_model, tmp_path):
    from repro.serve.server import GoldenTable

    log_path = tmp_path / "golden-deltas.jsonl"
    with GoldenDeltaLog(log_path) as log:
        log.append(
            {"k1": {"address": "9th Street"}}, [], batch=0, bundle_version=1
        )

    source = ModelSource(model=learned_model)

    async def scenario():
        server = await start_test_server(
            source, golden=GoldenTable(log_path), poll_interval=0.05
        )
        try:
            async with await ServeClient.connect(*server.address) as client:
                hit = await client.rpc(op="lookup", key="k1")
                assert hit["found"]
                assert hit["record"] == {"address": "9th Street"}
                miss = await client.rpc(op="lookup", key="k2")
                assert not miss["found"] and miss["ok"]
                sub = await client.rpc(op="subscribe")
                assert sub["subscribed"] and sub["seq"] == 1
                # A new batch published while subscribed is pushed.
                with GoldenDeltaLog(log_path) as log:
                    log.append(
                        {"k2": {"address": "Elm Avenue"}},
                        ["k1"],
                        batch=1,
                        bundle_version=2,
                    )
                push = await client.read_json()
                assert push["push"] == "golden" and push["seq"] == 2
                assert push["removed"] == ["k1"]
                # ...and the lookup table applied the same delta.
                gone = await client.rpc(op="lookup", key="k1")
                assert not gone["found"]
                now = await client.rpc(op="lookup", key="k2")
                assert now["record"] == {"address": "Elm Avenue"}
        finally:
            await server.stop()

    run(scenario())


def test_lookup_without_golden_log_is_an_error(static_source):
    async def scenario():
        server = await start_test_server(static_source)
        try:
            async with await ServeClient.connect(*server.address) as client:
                reply = await client.rpc(op="lookup", key="k")
                assert not reply["ok"]
                sub = await client.rpc(op="subscribe")
                assert not sub["ok"]
        finally:
            await server.stop()

    run(scenario())


def test_registry_source_serves_latest_and_skips_older(
    learned_model, identity_model, tmp_path
):
    registry = ModelRegistry(tmp_path / "reg")
    registry.save(learned_model, "addr")
    registry.save(identity_model, "addr")
    source = ModelSource(registry=registry, name="addr", ttl=60.0)
    version, engine = source.current()
    assert version == 2
    # v2 is the identity variant: engine output == input everywhere.
    assert engine.transform("9th St") == "9th St"
    # Stable on repeated reads (cache hit, same object).
    assert source.current()[1] is engine


def test_parse_listen():
    assert parse_listen("127.0.0.1:7007") == ("127.0.0.1", 7007)
    assert parse_listen("localhost:0") == ("localhost", 0)
    with pytest.raises(ValueError):
        parse_listen("7007")
    with pytest.raises(ValueError):
        parse_listen(":7007")
    with pytest.raises(ValueError):
        parse_listen("host:port")
