"""Compiled apply-engine tests on a hand-built model: exact table,
chain composition, program generalization, token rules, LRU cache,
batching, and multiprocessing sharding."""

import pytest

from repro.core.functions import ConstantStr, SubStr
from repro.core.positions import BEGIN, END, MatchPos
from repro.core.program import Program
from repro.core.terms import DIGITS
from repro.pipeline.oracle import FORWARD, REVERSE
from repro.serve import ApplyEngine
from repro.serve.engine import LRUCache
from repro.serve.model import (
    ConfirmedGroup,
    ConfirmedMember,
    TransformationModel,
)

#: SubStr(first digit-run begin .. end): "9th" -> "9", "42nd" -> "42".
DIGIT_PROGRAM = Program(
    (SubStr(MatchPos(DIGITS, 1, BEGIN), MatchPos(DIGITS, 1, END)),)
)


def member(lhs, rhs, whole=True, token=False):
    return ConfirmedMember(lhs, rhs, whole, token, cells_changed=1)


@pytest.fixture
def model():
    groups = [
        # Forward group with a real program: generalizes by structure.
        ConfirmedGroup(
            DIGIT_PROGRAM,
            FORWARD,
            (member("9th", "9"), member("3rd", "3")),
            structure=(("d", "l"), ("d",)),
        ),
        # Token-level rule; its all-constant program must NOT be indexed.
        ConfirmedGroup(
            Program((ConstantStr("Street"),)),
            FORWARD,
            (member("St", "Street", whole=False, token=True),),
            structure=(("C", "l"), ("C", "l")),
        ),
        # Chain: A -> B now ...
        ConfirmedGroup(
            Program((ConstantStr("B"),)),
            FORWARD,
            (member("A", "B"),),
            structure=(("C",), ("C",)),
        ),
        # ... and B -> C later: exact table must compose to A -> C.
        ConfirmedGroup(
            Program((ConstantStr("C"),)),
            FORWARD,
            (member("B", "C"),),
            structure=(("C",), ("C",)),
        ),
        # Reverse-approved group: members count, program must not.
        ConfirmedGroup(
            DIGIT_PROGRAM,
            REVERSE,
            (member("7", "7th"),),
            structure=(("d", "l"), ("d",)),
        ),
    ]
    return TransformationModel("test", "col", groups=groups)


@pytest.fixture
def engine(model):
    return ApplyEngine(model)


class TestCompile:
    def test_exact_table_chains(self, engine):
        assert engine.exact["A"] == "C"
        assert engine.exact["B"] == "C"

    def test_all_constant_program_excluded(self, engine):
        assert ("C", "l") not in engine.programs

    def test_reverse_program_excluded(self, engine):
        # Only the forward digit group's program is indexed under d,l.
        assert engine.programs[("d", "l")] == [DIGIT_PROGRAM]

    def test_token_rules_in_order(self, engine):
        assert engine.token_rules == [("St", "Street")]


class TestTransform:
    def test_exact_hit(self, engine):
        assert engine.transform("9th") == "9"
        assert engine.stats().exact_hits == 1

    def test_program_generalizes_to_unseen_value(self, engine):
        assert engine.transform("42nd") == "42"
        assert engine.stats().program_hits == 1

    def test_constant_stamp_does_not_fire(self, engine):
        # Same structure as "St" -> "Street", but the all-constant
        # program was excluded, and "Rd" is no token rule's lhs.
        assert engine.transform("Rd") == "Rd"

    def test_token_rule_is_boundary_aware(self, engine):
        assert engine.transform("5 St") == "5 Street"
        assert engine.transform("5 Stone") == "5 Stone"

    def test_untouched_value_counts_as_miss(self, engine):
        engine.transform("zzz")
        assert engine.stats().misses == 1

    def test_cache_hit_on_second_call(self, engine):
        engine.transform("42nd")
        engine.transform("42nd")
        assert engine.stats().cache_hits == 1
        assert engine.stats().program_hits == 1

    def test_programs_can_be_disabled(self, model):
        engine = ApplyEngine(model, use_programs=False)
        assert engine.transform("42nd") == "42nd"


class TestBatch:
    def test_apply_values_broadcasts_and_dedupes(self, engine):
        values = ["9th", "42nd", "9th", "zzz", "42nd"]
        assert engine.apply_values(values) == ["9", "42", "9", "zzz", "42"]
        assert engine.stats().rows == 5
        assert engine.stats().unique_values == 3

    def test_sharded_matches_serial(self, model):
        values = [f"{i}th" for i in range(40)] + ["A", "5 St"] * 5
        serial = ApplyEngine(model).apply_values(values)
        sharded_engine = ApplyEngine(model)
        sharded = sharded_engine.apply_values(
            values, workers=2, min_shard=2
        )
        assert sharded == serial
        assert sharded_engine.stats().sharded_values > 0

    def test_small_batches_never_shard(self, engine):
        engine.apply_values(["9th"], workers=4)
        assert engine.stats().sharded_values == 0

    def test_apply_table(self, engine):
        from repro.data.table import ClusterTable, Record

        table = ClusterTable(["col"])
        table.add_cluster(
            "k",
            [
                Record("r0", {"col": "9th"}),
                Record("r1", {"col": "zzz"}),
            ],
        )
        changed = engine.apply_table(table, "col")
        assert len(changed) == 1
        assert table.cluster_values(0, "col") == ["9", "zzz"]


class TestLRUCache:
    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", "1")
        cache.put("b", "2")
        assert cache.get("a") == "1"  # refreshes "a"
        cache.put("c", "3")  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == "1"
        assert len(cache) == 2

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", "1")
        assert cache.get("a") is None

    def test_engine_respects_capacity(self, model):
        engine = ApplyEngine(model, cache_size=1)
        engine.transform("42nd")
        engine.transform("13th")
        engine.transform("42nd")
        assert engine.stats().cache_hits == 0
        assert engine.stats().program_hits == 3
