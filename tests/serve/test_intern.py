"""InternTable unit and property tests: dense slot codes, idempotent
interning, C-level encode, and high-water-mark truncation — the
dictionary-encoding substrate of the columnar apply path."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import InternTable

SMALL = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestBasics:
    def test_add_assigns_dense_codes_in_first_seen_order(self):
        table = InternTable()
        assert table.add("a") == 0
        assert table.add("b") == 1
        assert table.add("a") == 0  # idempotent
        assert table.values == ["a", "b"]
        assert len(table) == 2

    def test_init_from_iterable(self):
        table = InternTable(["x", "y", "x"])
        assert table.values == ["x", "y"]
        assert table.code_of == {"x": 0, "y": 1}

    def test_encode_maps_a_whole_column(self):
        table = InternTable(["a", "b"])
        assert table.encode(["b", "a", "a", "b"]) == [1, 0, 0, 1]

    def test_encode_requires_interned_values(self):
        with pytest.raises(KeyError):
            InternTable(["a"]).encode(["a", "missing"])

    def test_contains(self):
        table = InternTable(["a"])
        assert "a" in table
        assert "b" not in table


class TestTruncate:
    def test_drops_newest_slots_first(self):
        table = InternTable(["a", "b", "c", "d"])
        assert table.truncate(2) == 2
        assert table.values == ["a", "b"]
        assert table.code_of == {"a": 0, "b": 1}
        assert "c" not in table

    def test_surviving_codes_are_stable(self):
        table = InternTable(["a", "b", "c"])
        table.truncate(2)
        assert table.add("a") == 0  # old slot survives
        assert table.add("c") == 2  # re-interned at the next slot

    def test_noop_when_under_the_cap(self):
        table = InternTable(["a", "b"])
        assert table.truncate(5) == 0
        assert table.values == ["a", "b"]

    def test_truncate_to_zero_empties(self):
        table = InternTable(["a", "b"])
        assert table.truncate(0) == 2
        assert len(table) == 0
        assert table.add("b") == 0

    def test_negative_size_clamps_to_zero(self):
        table = InternTable(["a"])
        assert table.truncate(-3) == 1
        assert len(table) == 0


@SMALL
@given(st.lists(st.text(max_size=6)), st.integers(0, 8))
def test_codes_stay_dense_under_adds_and_truncation(values, cap):
    """The core invariant: ``code_of[values[i]] == i`` for every live
    slot, no matter the add/truncate interleaving."""
    table = InternTable()
    for value in values:
        table.add(value)
    table.truncate(cap)
    for value in values:
        table.add(value)
    assert len(table.values) == len(table.code_of)
    for i, value in enumerate(table.values):
        assert table.code_of[value] == i
    assert table.encode(values) == [table.code_of[v] for v in values]
