"""Tests for LCS alignment (Appendix A)."""

import pytest

from repro.align.lcs import aligned_segments, lcs_length, lcs_pairs


class TestLcsPairs:
    def test_simple(self):
        assert lcs_pairs("abc", "abc") == [(0, 0), (1, 1), (2, 2)]

    def test_subsequence(self):
        pairs = lcs_pairs(list("axbxc"), list("abc"))
        assert [a for a, _ in pairs] == [0, 2, 4]
        assert [b for _, b in pairs] == [0, 1, 2]

    def test_no_common(self):
        assert lcs_pairs("abc", "xyz") == []

    def test_empty(self):
        assert lcs_pairs("", "abc") == []
        assert lcs_pairs("abc", "") == []

    def test_indices_are_increasing(self):
        pairs = lcs_pairs(list("banana"), list("ananas"))
        assert all(
            a1 < a2 and b1 < b2
            for (a1, b1), (a2, b2) in zip(pairs, pairs[1:])
        )

    def test_matches_are_equal(self):
        a, b = list("kitten"), list("sitting")
        for i, j in lcs_pairs(a, b):
            assert a[i] == b[j]

    def test_length(self):
        assert lcs_length(list("banana"), list("ananas")) == 5


class TestAlignedSegments:
    def test_appendix_a_example(self):
        """'9 St, 02141 Wisconsin' vs '9th St, 02141 WI' aligns on
        'St, 02141' and yields the two substitution segments."""
        a = "9 St, 02141 Wisconsin".split()
        b = "9th St, 02141 WI".split()
        segments = aligned_segments(a, b)
        assert (["9"], ["9th"]) in segments
        assert (["Wisconsin"], ["WI"]) in segments

    def test_multi_token_segment(self):
        a = "fox , dan box".split()
        b = "dan fox".split()
        segments = aligned_segments(a, b)
        # Everything except one anchored token pairs up.
        assert all(seg_a and seg_b for seg_a, seg_b in segments)

    def test_pure_insertion_skipped(self):
        a = "a b".split()
        b = "a x b".split()
        assert aligned_segments(a, b) == []

    def test_pure_deletion_skipped(self):
        a = "a x b".split()
        b = "a b".split()
        assert aligned_segments(a, b) == []

    def test_identical_sequences(self):
        assert aligned_segments(["a", "b"], ["a", "b"]) == []

    def test_total_replacement(self):
        assert aligned_segments(["x"], ["y"]) == [(["x"], ["y"])]
