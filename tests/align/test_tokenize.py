"""Tests for the tokenizer helpers."""

import pytest

from repro.align.tokenize import contains_token_run, join, token_spans, tokens


class TestTokens:
    def test_split(self):
        assert tokens("a b  c") == ["a", "b", "c"]

    def test_empty(self):
        assert tokens("") == []
        assert tokens("   ") == []


class TestTokenSpans:
    def test_spans(self):
        assert token_spans("ab  cd") == [(0, 2, "ab"), (4, 6, "cd")]

    def test_leading_trailing_space(self):
        assert token_spans("  x ") == [(2, 3, "x")]

    def test_round_trip(self):
        value = "9th  St, 02141"
        assert [t for _, _, t in token_spans(value)] == tokens(value)


class TestJoin:
    def test_join(self):
        assert join(["a", "b"]) == "a b"

    def test_join_inverse_of_tokens_modulo_whitespace(self):
        assert join(tokens("a   b c")) == "a b c"


class TestContainsTokenRun:
    def test_positive(self):
        assert contains_token_run("9th St Extra", "St")
        assert contains_token_run("9th St Extra", "St Extra")
        assert contains_token_run("9th St", "9th St")

    def test_token_boundary_respected(self):
        assert not contains_token_run("9th Stone", "St")
        assert not contains_token_run("WISCONSIN", "WI")

    def test_empty_segment(self):
        assert not contains_token_run("a b", "")

    def test_longer_than_value(self):
        assert not contains_token_run("a", "a b")
