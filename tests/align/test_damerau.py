"""Tests for Damerau-Levenshtein distance and alignment."""

import pytest

from repro.align.damerau import alignment_segments, damerau_levenshtein


class TestDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("ca", "abc", 3),  # restricted DL (OSA) distance
            ("ab", "ba", 1),  # adjacent transposition
            ("abcd", "acbd", 1),
            ("flaw", "lawn", 2),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert damerau_levenshtein(a, b) == expected

    def test_symmetry(self):
        assert damerau_levenshtein("abcx", "xabc") == damerau_levenshtein(
            "xabc", "abcx"
        )

    def test_triangle_inequality_samples(self):
        words = ["paris", "pairs", "parts", "sprat"]
        for a in words:
            for b in words:
                for c in words:
                    assert damerau_levenshtein(a, c) <= damerau_levenshtein(
                        a, b
                    ) + damerau_levenshtein(b, c)

    def test_works_on_token_sequences(self):
        a = "9 St , 02141 Wisconsin".split()
        b = "9th St , 02141 WI".split()
        assert damerau_levenshtein(a, b) == 2


class TestAlignmentSegments:
    def test_substitution_run(self):
        segments = alignment_segments("a x y b".split(), "a p q b".split())
        assert segments == [(["x", "y"], ["p", "q"])]

    def test_transposition_becomes_segment(self):
        segments = alignment_segments("a x y b".split(), "a y x b".split())
        assert segments == [(["x", "y"], ["y", "x"])]

    def test_identical(self):
        assert alignment_segments(["a"], ["a"]) == []

    def test_one_sided_runs_skipped(self):
        assert alignment_segments("a b".split(), "a x b".split()) == []

    def test_mixed_run_merges(self):
        # del + sub in one run yields a two-to-one segment.
        segments = alignment_segments("a x y b".split(), "a z b".split())
        assert segments == [(["x", "y"], ["z"])]
