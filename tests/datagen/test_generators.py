"""Tests for the synthetic dataset generators."""

import pytest

from repro.data.stats import dataset_stats
from repro.datagen import (
    DATASETS,
    address_dataset,
    authorlist_dataset,
    journaltitle_dataset,
)
from repro.datagen.address import canonical_address, make_address, ordinal
from repro.datagen.base import GeneratorSpec, lowercased
from repro.datagen.journaltitle import canonical_journal, make_journal
from repro.datagen.authorlist import canonical_authors, make_author_list
import random


@pytest.fixture(scope="module")
def small_address():
    return address_dataset(scale=0.1)


@pytest.fixture(scope="module")
def small_authors():
    return authorlist_dataset(scale=0.2)


@pytest.fixture(scope="module")
def small_journals():
    return journaltitle_dataset(scale=0.05)


class TestOrdinal:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (1, "1st"), (2, "2nd"), (3, "3rd"), (4, "4th"), (9, "9th"),
            (11, "11th"), (12, "12th"), (13, "13th"), (21, "21st"),
            (22, "22nd"), (33, "33rd"), (111, "111th"),
        ],
    )
    def test_suffixes(self, n, expected):
        assert ordinal(n) == expected


class TestGroundTruth:
    @pytest.mark.parametrize(
        "fixture", ["small_address", "small_authors", "small_journals"]
    )
    def test_every_cell_has_canonical(self, fixture, request):
        ds = request.getfixturevalue(fixture)
        for cell in ds.table.cells(ds.column):
            assert cell in ds.canonical

    @pytest.mark.parametrize(
        "fixture", ["small_address", "small_authors", "small_journals"]
    )
    def test_every_cluster_has_golden(self, fixture, request):
        ds = request.getfixturevalue(fixture)
        assert set(ds.golden) == set(range(ds.table.num_clusters))

    def test_labeler_symmetry(self, small_address):
        ds = small_address
        is_variant = ds.labeler()
        cells = list(ds.table.cells(ds.column))[:50]
        for a in cells[:10]:
            for b in cells[:10]:
                assert is_variant(a, b) == is_variant(b, a)

    def test_fresh_table_is_independent(self, small_address):
        ds = small_address
        copy = ds.fresh_table()
        cell = next(iter(copy.cells(ds.column)))
        copy.set_value(cell, "MUTATED")
        assert ds.table.value(cell) != "MUTATED"


class TestShapes:
    def test_address_mix_is_conflict_heavy(self, small_address):
        stats = dataset_stats(
            small_address.table, small_address.column, small_address.labeler()
        )
        assert stats.conflict_pair_pct > 0.5

    def test_journal_mix_is_variant_heavy(self, small_journals):
        stats = dataset_stats(
            small_journals.table,
            small_journals.column,
            small_journals.labeler(),
        )
        assert stats.variant_pair_pct > 0.5

    def test_journal_clusters_are_tiny(self, small_journals):
        stats = dataset_stats(small_journals.table, small_journals.column)
        assert stats.avg_cluster_size < 3.0

    def test_scale_controls_size(self):
        small = address_dataset(scale=0.05)
        large = address_dataset(scale=0.2)
        assert large.table.num_clusters > small.table.num_clusters

    def test_generation_is_deterministic(self):
        a = address_dataset(scale=0.05, seed=3)
        b = address_dataset(scale=0.05, seed=3)
        assert a.table.column_values(a.column) == b.table.column_values(b.column)

    def test_seed_changes_data(self):
        a = address_dataset(scale=0.05, seed=3)
        b = address_dataset(scale=0.05, seed=4)
        assert a.table.column_values(a.column) != b.table.column_values(b.column)


class TestEntities:
    def test_canonical_address_format(self):
        rng = random.Random(0)
        for _ in range(50):
            entity = make_address(rng)
            canon = canonical_address(entity)
            assert ", " in canon
            assert canon.rsplit(" ", 1)[1].isupper()  # state abbreviation

    def test_canonical_authors_lowercase(self):
        rng = random.Random(0)
        for _ in range(20):
            entity = make_author_list(rng)
            assert canonical_authors(entity) == canonical_authors(entity).lower()

    def test_canonical_journal_words(self):
        rng = random.Random(0)
        for _ in range(20):
            entity = make_journal(rng)
            title = canonical_journal(entity)
            assert title and "  " not in title


class TestLowercased:
    def test_everything_lowercased(self, small_journals):
        low = lowercased(small_journals)
        for cell in low.table.cells(low.column):
            assert low.table.value(cell) == low.table.value(cell).lower()
        assert all(v == v.lower() for v in low.golden.values())
        assert all(v == v.lower() for v in low.canonical.values())

    def test_original_untouched(self, small_journals):
        values_before = small_journals.table.column_values(small_journals.column)
        lowercased(small_journals)
        assert small_journals.table.column_values(
            small_journals.column
        ) == values_before


class TestRegistry:
    def test_all_three_registered(self):
        assert set(DATASETS) == {"Address", "AuthorList", "JournalTitle"}

    def test_registry_constructs(self):
        for maker in DATASETS.values():
            ds = maker(scale=0.03)
            assert ds.table.num_records > 0
