"""Sanity tests for the generator vocabularies."""

import pytest

from repro.datagen import corpus


class TestNameCorpora:
    def test_first_names_nonempty_and_unique(self):
        assert len(corpus.FIRST_NAMES) > 100
        assert len(set(corpus.FIRST_NAMES)) == len(corpus.FIRST_NAMES)

    def test_last_names_nonempty_and_unique(self):
        assert len(corpus.LAST_NAMES) > 100
        assert len(set(corpus.LAST_NAMES)) == len(corpus.LAST_NAMES)

    def test_nicknames_reference_known_names(self):
        for full in corpus.NICKNAMES:
            assert full in corpus.FIRST_NAMES, full

    def test_nicknames_differ_from_full_names(self):
        for full, nick in corpus.NICKNAMES.items():
            assert full.lower() != nick.lower(), full


class TestAddressCorpora:
    def test_street_types_have_distinct_abbreviations(self):
        abbrevs = list(corpus.STREET_TYPES.values())
        assert len(set(abbrevs)) == len(abbrevs)
        for full, abbrev in corpus.STREET_TYPES.items():
            assert abbrev != full and abbrev

    def test_all_51_states(self):
        assert len(corpus.STATES) == 51  # 50 states + DC
        for full, abbrev in corpus.STATES.items():
            assert len(abbrev) == 2 and abbrev.isupper()

    def test_state_abbreviations_unique(self):
        abbrevs = list(corpus.STATES.values())
        assert len(set(abbrevs)) == len(abbrevs)

    def test_directions(self):
        assert set(corpus.DIRECTIONS.values()) == {"E", "W", "N", "S"}


class TestJournalCorpora:
    def test_head_abbreviations_shorter(self):
        for full, abbrev in corpus.JOURNAL_HEADS.items():
            assert len(abbrev) < len(full)

    def test_field_abbreviations_are_prefix_like(self):
        # ISO-4 truncations keep the word's first letter (enables the
        # Prefix-function grouping path).
        for full, abbrev in corpus.FIELD_ABBREVIATIONS.items():
            assert abbrev[0].lower() == full[0].lower(), full
            assert len(abbrev) < len(full)

    def test_every_field_word_has_an_abbreviation(self):
        for word in corpus.JOURNAL_FIELDS:
            assert word in corpus.FIELD_ABBREVIATIONS, word
        for word in corpus.JOURNAL_QUALIFIERS:
            assert word in corpus.FIELD_ABBREVIATIONS, word

    def test_annotations_parenthesized(self):
        for note in corpus.AUTHOR_ANNOTATIONS:
            assert note.startswith("(") and note.endswith(")")
