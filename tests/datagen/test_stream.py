"""Tests for the batch-emitting dataset views."""

from collections import Counter

import pytest

from repro.datagen import dataset_stream
from repro.datagen.address import address_dataset
from repro.datagen.journaltitle import journaltitle_dataset


@pytest.fixture(scope="module")
def dataset():
    return address_dataset(scale=0.05, seed=9)


class TestDatasetStream:
    def test_batch_count_and_coverage(self, dataset):
        stream = dataset_stream(dataset, batches=4, seed=1)
        assert len(stream.batches) == 4
        assert stream.num_records == dataset.table.num_records
        sizes = [len(b) for b in stream.batches]
        assert max(sizes) - min(sizes) <= 1  # near-even slicing

    def test_rids_unique_and_keyed(self, dataset):
        stream = dataset_stream(dataset, batches=3, seed=1)
        rids = [r.rid for r in stream.records]
        assert len(rids) == len(set(rids))
        assert all(stream.key_column in r.values for r in stream.records)

    def test_ground_truth_complete(self, dataset):
        stream = dataset_stream(dataset, batches=3, seed=1)
        assert set(stream.canonical_by_rid) == {
            r.rid for r in stream.records
        }
        assert stream.golden_by_key  # golden value per entity key

    def test_one_shot_table_reassembles_clusters(self, dataset):
        stream = dataset_stream(dataset, batches=3, seed=1)
        table = stream.table()

        def by_key(t):
            return {
                c.key: Counter(r.values[dataset.column] for r in c.records)
                for c in t.clusters
                if c.records
            }

        assert by_key(table) == by_key(dataset.table)

    def test_canonical_cells_map_onto_table(self, dataset):
        stream = dataset_stream(dataset, batches=3, seed=1)
        table = stream.table()
        canonical = stream.canonical_cells(table)
        assert len(canonical) == table.num_records

    def test_shuffle_determinism(self, dataset):
        a = dataset_stream(dataset, batches=3, seed=5)
        b = dataset_stream(dataset, batches=3, seed=5)
        c = dataset_stream(dataset, batches=3, seed=6)
        assert [r.rid for r in a.records] == [r.rid for r in b.records]
        assert [r.rid for r in a.records] != [r.rid for r in c.records]

    def test_no_shuffle_keeps_generation_order(self, dataset):
        stream = dataset_stream(dataset, batches=2, shuffle=False)
        rids = [r.rid for r in stream.records]
        expected = [
            r.rid for c in dataset.table.clusters for r in c.records
        ]
        assert rids == expected

    def test_works_for_other_generators(self):
        dataset = journaltitle_dataset(scale=0.05, seed=2)
        stream = dataset_stream(dataset, batches=2, seed=2)
        assert stream.num_records == dataset.table.num_records

    def test_batches_validated(self, dataset):
        with pytest.raises(ValueError):
            dataset_stream(dataset, batches=0)
