"""Tests for the batch-emitting dataset views."""

from collections import Counter

import pytest

from repro.datagen import dataset_stream
from repro.datagen.address import address_dataset
from repro.datagen.journaltitle import journaltitle_dataset


@pytest.fixture(scope="module")
def dataset():
    return address_dataset(scale=0.05, seed=9)


class TestDatasetStream:
    def test_batch_count_and_coverage(self, dataset):
        stream = dataset_stream(dataset, batches=4, seed=1)
        assert len(stream.batches) == 4
        assert stream.num_records == dataset.table.num_records
        sizes = [len(b) for b in stream.batches]
        assert max(sizes) - min(sizes) <= 1  # near-even slicing

    def test_rids_unique_and_keyed(self, dataset):
        stream = dataset_stream(dataset, batches=3, seed=1)
        rids = [r.rid for r in stream.records]
        assert len(rids) == len(set(rids))
        assert all(stream.key_column in r.values for r in stream.records)

    def test_ground_truth_complete(self, dataset):
        stream = dataset_stream(dataset, batches=3, seed=1)
        assert set(stream.canonical_by_rid) == {
            r.rid for r in stream.records
        }
        assert stream.golden_by_key  # golden value per entity key

    def test_one_shot_table_reassembles_clusters(self, dataset):
        stream = dataset_stream(dataset, batches=3, seed=1)
        table = stream.table()

        def by_key(t):
            return {
                c.key: Counter(r.values[dataset.column] for r in c.records)
                for c in t.clusters
                if c.records
            }

        assert by_key(table) == by_key(dataset.table)

    def test_canonical_cells_map_onto_table(self, dataset):
        stream = dataset_stream(dataset, batches=3, seed=1)
        table = stream.table()
        canonical = stream.canonical_cells(table)
        assert len(canonical) == table.num_records

    def test_shuffle_determinism(self, dataset):
        a = dataset_stream(dataset, batches=3, seed=5)
        b = dataset_stream(dataset, batches=3, seed=5)
        c = dataset_stream(dataset, batches=3, seed=6)
        assert [r.rid for r in a.records] == [r.rid for r in b.records]
        assert [r.rid for r in a.records] != [r.rid for r in c.records]

    def test_no_shuffle_keeps_generation_order(self, dataset):
        stream = dataset_stream(dataset, batches=2, shuffle=False)
        rids = [r.rid for r in stream.records]
        expected = [
            r.rid for c in dataset.table.clusters for r in c.records
        ]
        assert rids == expected

    def test_works_for_other_generators(self):
        dataset = journaltitle_dataset(scale=0.05, seed=2)
        stream = dataset_stream(dataset, batches=2, seed=2)
        assert stream.num_records == dataset.table.num_records

    def test_batches_validated(self, dataset):
        with pytest.raises(ValueError):
            dataset_stream(dataset, batches=0)


class TestGoldenStream:
    """The multi-column emitter behind ``repro stream --columns``."""

    @pytest.fixture(scope="class")
    def stream(self):
        from repro.datagen import golden_stream

        return golden_stream(
            batches=4, n_clusters=12, conflict_rate=0.1, seed=5
        )

    def test_every_record_renders_every_column(self, stream):
        for record in stream.records:
            for column in stream.columns:
                assert record.values[column]
            assert record.values[stream.key_column]
            assert record.source

    def test_shared_entity_identity_per_cluster(self, stream):
        """One primary entity per cluster *per column*: the cluster's
        golden value denotes it, and every record's per-column ground
        truth is a canonical of that column's entity pool."""
        assert set(stream.golden_by_key) == {
            r.values[stream.key_column] for r in stream.records
        }
        for key, golden in stream.golden_by_key.items():
            assert set(golden) == set(stream.columns)

    def test_ground_truth_keyed_per_column_per_rid(self, stream):
        rids = {r.rid for r in stream.records}
        assert set(stream.canonical_by_rid) == set(stream.columns)
        for column in stream.columns:
            assert set(stream.canonical_by_rid[column]) == rids

    def test_conflict_free_records_denote_the_primary(self):
        from repro.datagen import golden_stream

        clean = golden_stream(
            batches=2, n_clusters=8, conflict_rate=0.0, seed=3
        )
        for record in clean.records:
            key = record.values[clean.key_column]
            for column in clean.columns:
                assert (
                    clean.canonical_by_rid[column][record.rid]
                    == clean.golden_by_key[key][column]
                )

    def test_one_shot_table_matches_batches(self, stream):
        table = stream.table()
        assert table.num_records == stream.num_records
        assert {c.key for c in table.clusters} == set(
            stream.golden_by_key
        )

    def test_canonical_cells_cover_the_table_per_column(self, stream):
        table = stream.table()
        for column in stream.columns:
            assert len(stream.canonical_cells(table, column)) == (
                table.num_records
            )

    def test_unshuffled_keys_sort_like_first_seen(self):
        from repro.datagen import golden_stream

        stream = golden_stream(
            batches=2, n_clusters=11, seed=1, shuffle=False
        )
        keys = []
        for record in stream.records:
            key = record.values[stream.key_column]
            if key not in keys:
                keys.append(key)
        assert keys == sorted(keys)

    def test_determinism_and_seed_sensitivity(self):
        from repro.datagen import golden_stream

        a = golden_stream(batches=3, n_clusters=10, seed=4)
        b = golden_stream(batches=3, n_clusters=10, seed=4)
        c = golden_stream(batches=3, n_clusters=10, seed=5)
        assert [r.values for r in a.records] == [
            r.values for r in b.records
        ]
        assert [r.values for r in a.records] != [
            r.values for r in c.records
        ]

    def test_column_subset_and_validation(self):
        from repro.datagen import golden_stream

        two = golden_stream(
            batches=2, n_clusters=6, columns=("address", "title"), seed=2
        )
        assert two.columns == ("address", "title")
        with pytest.raises(ValueError, match="unknown golden columns"):
            golden_stream(batches=2, columns=("nope",))
        with pytest.raises(ValueError, match="at least one column"):
            golden_stream(batches=2, columns=())
        with pytest.raises(ValueError, match="batches"):
            golden_stream(batches=0)
