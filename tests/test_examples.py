"""Smoke test: every script in ``examples/`` must run.

Each example is executed in a subprocess at a small scale so the
documented entry points cannot silently rot.  A new example must either
run with no arguments or be registered here with its smoke arguments.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"

#: Per-script smoke arguments (small scales / throwaway workdirs).
SMOKE_ARGS = {
    "quickstart.py": [],
    "author_groups_demo.py": ["0.05"],
    "address_pipeline.py": ["0.04"],
    "resolution_to_golden.py": [],
    "csv_workflow.py": [],  # workdir appended at run time
    "learn_apply_serve.py": ["0.05"],
    "streaming_consolidation.py": ["0.05"],
}

#: Minimum expected stdout fragment, proving the script did real work.
EXPECTED_OUTPUT = {
    "quickstart.py": "group of",
    "author_groups_demo.py": "Group 1",
    "address_pipeline.py": "final:",
    "resolution_to_golden.py": "golden records:",
    "csv_workflow.py": "standardized:",
    "learn_apply_serve.py": "serve protocol:",
    "streaming_consolidation.py": "saved by reusing",
}


def all_example_scripts():
    return sorted(p.name for p in EXAMPLES.glob("*.py"))


def test_every_example_is_registered():
    """A new example must be added to the smoke table above."""
    assert set(all_example_scripts()) == set(SMOKE_ARGS)


@pytest.mark.parametrize("script", sorted(SMOKE_ARGS))
def test_example_runs(script, tmp_path):
    args = list(SMOKE_ARGS[script])
    if script == "csv_workflow.py":
        args.append(str(tmp_path))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
        cwd=tmp_path,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert EXPECTED_OUTPUT[script] in result.stdout
