"""Tests for the union-find substrate."""

import pytest

from repro.resolution.unionfind import UnionFind


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(["a", "b"])
        assert not uf.connected("a", "b")

    def test_union_connects(self):
        uf = UnionFind(["a", "b"])
        assert uf.union("a", "b")
        assert uf.connected("a", "b")

    def test_union_idempotent(self):
        uf = UnionFind(["a", "b"])
        uf.union("a", "b")
        assert not uf.union("a", "b")  # already merged

    def test_transitivity(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_find_adds_unknown_items(self):
        uf = UnionFind()
        assert uf.find("fresh") == "fresh"
        assert len(uf) == 1

    def test_groups(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(3, 4)
        groups = uf.groups()
        assert [0, 1] in groups and [3, 4] in groups and [2] in groups

    def test_groups_deterministic_order(self):
        uf = UnionFind([3, 1, 2])
        assert uf.groups() == [[1], [2], [3]]

    def test_large_chain_path_compression(self):
        uf = UnionFind(range(1000))
        for i in range(999):
            uf.union(i, i + 1)
        assert uf.connected(0, 999)
        assert len(uf.groups()) == 1
