"""Tests for blocking strategies."""

import pytest

from repro.resolution.blocking import (
    BLOCKING_MODES,
    DEFAULT_LSH_HASHES,
    BlockIndex,
    MinHasher,
    derive_lsh_params,
    build_blocks,
    candidate_pairs,
    char_shingles,
    combine_keys,
    exact_keys,
    lsh_keys,
    make_block_keys,
    prefix_keys,
    stable_hash,
    token_keys,
)


class TestKeyFunctions:
    def test_token_keys_lowercase(self):
        assert token_keys("Main St") == {"main", "st"}

    def test_prefix_keys(self):
        fn = prefix_keys(3)
        assert fn("Martha") == {"mar"}
        assert fn("") == set()

    def test_exact_keys(self):
        assert exact_keys("X1") == {"X1"}
        assert exact_keys("") == set()


class TestBlocks:
    def test_build_blocks(self):
        blocks = build_blocks(["a b", "b c", "d"])
        assert blocks["b"] == [0, 1]
        assert blocks["d"] == [2]

    def test_candidate_pairs_within_blocks_only(self):
        blocks = build_blocks(["a x", "a y", "b z"])
        pairs = candidate_pairs(blocks)
        assert (0, 1) in pairs
        assert (0, 2) not in pairs

    def test_pairs_deduped_across_blocks(self):
        blocks = build_blocks(["a b", "a b"])
        assert candidate_pairs(blocks) == {(0, 1)}

    def test_oversized_blocks_skipped(self):
        values = ["common"] * 10
        blocks = build_blocks(values)
        assert candidate_pairs(blocks, max_block_size=5) == set()

    def test_pairs_are_ordered(self):
        blocks = build_blocks(["k", "k"])
        assert all(a < b for a, b in candidate_pairs(blocks))


class TestShingles:
    def test_normalizes_case_and_whitespace(self):
        assert char_shingles("A  B", 3) == char_shingles("a b", 3)

    def test_short_values_shingle_whole(self):
        assert char_shingles("ab", 3) == {"ab"}
        assert char_shingles("", 3) == set()

    def test_gram_count(self):
        assert char_shingles("abcd", 3) == {"abc", "bcd"}


class TestMinHasher:
    def test_signature_is_deterministic(self):
        a = MinHasher(12).signature("5 Main Street")
        b = MinHasher(12).signature("5 Main Street")
        assert a == b
        assert len(a) == 12

    def test_empty_value_empty_signature(self):
        assert MinHasher(8).signature("") == ()

    def test_similar_values_agree_more(self):
        hasher = MinHasher(64)
        base = hasher.signature("100 north main street springfield")
        near = hasher.signature("100 north main street sprngfield")
        far = hasher.signature("the quarterly journal of economics")

        def agreement(x, y):
            return sum(1 for p, q in zip(x, y) if p == q) / len(x)

        assert agreement(base, near) > agreement(base, far)
        assert agreement(base, near) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            MinHasher(0)
        with pytest.raises(ValueError):
            MinHasher(4, shingle=0)


class TestLshKeys:
    def test_one_key_per_band_in_band_order(self):
        fn = lsh_keys(bands=6, rows=2)
        keys = list(fn("5 Main Street"))
        assert len(keys) == 6
        assert [k[1] for k in keys] == list(range(6))
        assert all(k[0] == "lsh" for k in keys)

    def test_empty_value_no_keys(self):
        assert list(lsh_keys()("")) == []
        assert list(lsh_keys()("   ")) == []

    def test_near_duplicates_share_a_block(self):
        fn = lsh_keys(bands=16, rows=3)
        a = set(fn("100 north main street springfield"))
        b = set(fn("100 north main street sprngfield"))
        assert a & b

    def test_unrelated_values_do_not_collide(self):
        fn = lsh_keys(bands=16, rows=3)
        a = set(fn("100 north main street springfield"))
        b = set(fn("proceedings of the vldb endowment"))
        assert not (a & b)

    def test_keys_are_process_stable(self):
        # Pinned values: any str-hash salting or parameter drift that
        # leaked into the keys would break cross-process shard routing.
        keys = list(lsh_keys(bands=2, rows=2)("abc"))
        assert keys == [
            ("lsh", 0, 113158063),
            ("lsh", 1, 1557913380),
        ]

    def test_keys_route_through_block_index(self):
        fn = lsh_keys(bands=4, rows=2)
        index = BlockIndex(shards=3, retention=2)
        for rid, value in [("r0", "5 Main St"), ("r1", "5 Main St.")]:
            for key in fn(value):
                index.add(key, rid)
        shared = [k for k in fn("5 Main St") if "r1" in index.members(k)]
        assert shared  # rotation/partitioning work on LSH keys too

    def test_validation(self):
        with pytest.raises(ValueError):
            lsh_keys(bands=0)
        with pytest.raises(ValueError):
            lsh_keys(rows=0)


class TestKeyComposition:
    def test_combine_keys_unions_and_dedupes(self):
        fn = combine_keys(token_keys, token_keys, lsh_keys(bands=2))
        keys = list(fn("Main St"))
        assert keys.count("main") == 1
        assert sum(1 for k in keys if isinstance(k, tuple)) == 2

    def test_make_block_keys_modes(self):
        assert make_block_keys("token") is token_keys
        lsh_fn = make_block_keys("lsh", bands=4, rows=2)
        assert len(list(lsh_fn("Main Street"))) == 4
        both = make_block_keys("token+lsh", bands=4, rows=2)
        keys = list(both("Main Street"))
        assert "main" in keys
        assert sum(1 for k in keys if isinstance(k, tuple)) == 4

    def test_make_block_keys_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            make_block_keys("sorted-neighborhood")
        assert "lsh" in BLOCKING_MODES


class TestDeriveLshParams:
    """The S-curve-fitted defaults behind ``--similarity-threshold``."""

    def test_respects_the_signature_budget(self):
        for threshold in (0.3, 0.5, 0.7, 0.8, 0.9):
            bands, rows = derive_lsh_params(threshold)
            assert bands >= 1 and rows >= 1
            assert bands * rows <= DEFAULT_LSH_HASHES

    def test_collision_cliff_lands_at_the_threshold(self):
        """The derived banding puts the steep part of the S-curve at
        the threshold: collision probability is moderate there, near
        one well above it, and near zero well below it."""
        for threshold in (0.5, 0.6, 0.7, 0.8, 0.9):
            bands, rows = derive_lsh_params(threshold)

            def p(s):
                return 1.0 - (1.0 - s**rows) ** bands

            assert 0.2 <= p(threshold) <= 0.8
            assert p(min(0.99, threshold + 0.15)) > p(threshold)
            assert p(max(0.01, threshold - 0.25)) < 0.15
            assert p(min(0.999, threshold + 0.09999)) > 0.45

    def test_stricter_thresholds_mean_more_rows(self):
        rows_by_threshold = [
            derive_lsh_params(t)[1] for t in (0.5, 0.7, 0.9)
        ]
        assert rows_by_threshold == sorted(rows_by_threshold)

    def test_deterministic(self):
        assert derive_lsh_params(0.8) == derive_lsh_params(0.8)

    def test_smaller_budgets_are_honoured(self):
        bands, rows = derive_lsh_params(0.8, num_hashes=12)
        assert bands * rows <= 12

    def test_rejects_degenerate_thresholds(self):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                derive_lsh_params(bad)
        with pytest.raises(ValueError):
            derive_lsh_params(0.8, num_hashes=0)
