"""Tests for blocking strategies."""

import pytest

from repro.resolution.blocking import (
    build_blocks,
    candidate_pairs,
    exact_keys,
    prefix_keys,
    token_keys,
)


class TestKeyFunctions:
    def test_token_keys_lowercase(self):
        assert token_keys("Main St") == {"main", "st"}

    def test_prefix_keys(self):
        fn = prefix_keys(3)
        assert fn("Martha") == {"mar"}
        assert fn("") == set()

    def test_exact_keys(self):
        assert exact_keys("X1") == {"X1"}
        assert exact_keys("") == set()


class TestBlocks:
    def test_build_blocks(self):
        blocks = build_blocks(["a b", "b c", "d"])
        assert blocks["b"] == [0, 1]
        assert blocks["d"] == [2]

    def test_candidate_pairs_within_blocks_only(self):
        blocks = build_blocks(["a x", "a y", "b z"])
        pairs = candidate_pairs(blocks)
        assert (0, 1) in pairs
        assert (0, 2) not in pairs

    def test_pairs_deduped_across_blocks(self):
        blocks = build_blocks(["a b", "a b"])
        assert candidate_pairs(blocks) == {(0, 1)}

    def test_oversized_blocks_skipped(self):
        values = ["common"] * 10
        blocks = build_blocks(values)
        assert candidate_pairs(blocks, max_block_size=5) == set()

    def test_pairs_are_ordered(self):
        blocks = build_blocks(["k", "k"])
        assert all(a < b for a, b in candidate_pairs(blocks))
