"""Tests for the similarity measures."""

import pytest

from repro.resolution.similarity import (
    cosine,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    overlap,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("", "abc", 3),
            ("abc", "", 3),
            ("ab", "ba", 2),  # plain Levenshtein: no transposition op
        ],
    )
    def test_known(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetry(self):
        assert levenshtein("abcd", "dcba") == levenshtein("dcba", "abcd")

    def test_similarity_normalization(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0


class TestLevenshteinCutoff:
    """The banded early-exit kernel: exact inside the cutoff, clamped
    to ``cutoff + 1`` outside it."""

    @pytest.mark.parametrize(
        "a,b",
        [
            ("kitten", "sitting"),
            ("flaw", "lawn"),
            ("", "abc"),
            ("abcdefgh", "abc"),
            ("ab", "ba"),
            ("same", "same"),
        ],
    )
    def test_matches_exact_for_every_cutoff(self, a, b):
        exact = levenshtein(a, b)
        for cutoff in range(0, len(a) + len(b) + 1):
            banded = levenshtein(a, b, score_cutoff=cutoff)
            if exact <= cutoff:
                assert banded == exact
            else:
                assert banded == cutoff + 1

    def test_length_gap_shortcut(self):
        # |len(a) - len(b)| > cutoff proves the distance without DP.
        assert levenshtein("abcdefgh", "ab", score_cutoff=3) == 4

    def test_randomized_agreement_with_exact(self):
        import random

        rng = random.Random(7)
        for _ in range(300):
            a = "".join(rng.choice("abc ") for _ in range(rng.randrange(9)))
            b = "".join(rng.choice("abc ") for _ in range(rng.randrange(9)))
            exact = levenshtein(a, b)
            for cutoff in (0, 1, 2, 4, 8):
                banded = levenshtein(a, b, score_cutoff=cutoff)
                assert banded == (exact if exact <= cutoff else cutoff + 1)

    def test_similarity_cutoff_exact_above_below_threshold(self):
        # Exact when the result clears the cutoff...
        assert levenshtein_similarity(
            "kitten", "sitting", score_cutoff=0.5
        ) == levenshtein_similarity("kitten", "sitting")
        # ... and guaranteed below it otherwise.
        low = levenshtein_similarity("abcdef", "zzzzzz", score_cutoff=0.9)
        assert low < 0.9

    def test_similarity_cutoff_boundary_is_exact(self):
        # sim("abcde","abcdz") == 0.8: the threshold == value edge must
        # not be lost to float rounding in the distance conversion.
        assert (
            levenshtein_similarity("abcde", "abcdz", score_cutoff=0.8) == 0.8
        )


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_classic_example(self):
        assert jaro("MARTHA", "MARHTA") == pytest.approx(0.9444, abs=1e-3)

    def test_no_similarity(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "x") == 0.0

    def test_winkler_prefix_boost(self):
        base = jaro("MARTHA", "MARHTA")
        boosted = jaro_winkler("MARTHA", "MARHTA")
        assert boosted > base
        assert boosted == pytest.approx(0.9611, abs=1e-3)

    def test_winkler_bounded_by_one(self):
        assert jaro_winkler("prefix", "prefixx") <= 1.0


class TestTokenMeasures:
    def test_jaccard(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert jaccard([], []) == 1.0
        assert jaccard(["a"], []) == 0.0

    def test_overlap(self):
        assert overlap(["a", "b"], ["b"]) == 1.0
        assert overlap(["a"], ["b"]) == 0.0

    def test_cosine(self):
        assert cosine(["a", "b"], ["a", "b"]) == pytest.approx(1.0)
        assert cosine(["a"], ["b"]) == 0.0
        assert cosine([], []) == 1.0

    def test_cosine_counts_matter(self):
        assert cosine(["a", "a", "b"], ["a", "b", "b"]) < 1.0
