"""Tests for the similarity measures."""

import pytest

from repro.resolution.similarity import (
    cosine,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    overlap,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("", "abc", 3),
            ("abc", "", 3),
            ("ab", "ba", 2),  # plain Levenshtein: no transposition op
        ],
    )
    def test_known(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetry(self):
        assert levenshtein("abcd", "dcba") == levenshtein("dcba", "abcd")

    def test_similarity_normalization(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_classic_example(self):
        assert jaro("MARTHA", "MARHTA") == pytest.approx(0.9444, abs=1e-3)

    def test_no_similarity(self):
        assert jaro("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro("", "x") == 0.0

    def test_winkler_prefix_boost(self):
        base = jaro("MARTHA", "MARHTA")
        boosted = jaro_winkler("MARTHA", "MARHTA")
        assert boosted > base
        assert boosted == pytest.approx(0.9611, abs=1e-3)

    def test_winkler_bounded_by_one(self):
        assert jaro_winkler("prefix", "prefixx") <= 1.0


class TestTokenMeasures:
    def test_jaccard(self):
        assert jaccard(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert jaccard([], []) == 1.0
        assert jaccard(["a"], []) == 0.0

    def test_overlap(self):
        assert overlap(["a", "b"], ["b"]) == 1.0
        assert overlap(["a"], ["b"]) == 0.0

    def test_cosine(self):
        assert cosine(["a", "b"], ["a", "b"]) == pytest.approx(1.0)
        assert cosine(["a"], ["b"]) == 0.0
        assert cosine([], []) == 1.0

    def test_cosine_counts_matter(self):
        assert cosine(["a", "a", "b"], ["a", "b", "b"]) < 1.0
