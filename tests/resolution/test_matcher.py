"""Tests for the end-to-end entity resolver."""

import pytest

from repro.data.table import Record
from repro.resolution.matcher import Matcher, cluster_by_key, hybrid_similarity


def records_of(*values, attribute="title", keys=None):
    return [
        Record(
            f"r{i}",
            {attribute: v, **({"key": keys[i]} if keys else {})},
        )
        for i, v in enumerate(values)
    ]


class TestMatcher:
    def test_variants_cluster_together(self):
        records = records_of(
            "Journal of Applied Biology",
            "Journal of Applied Biology.",
            "Physics Letters",
        )
        table = Matcher("title", threshold=0.75).resolve(records)
        sizes = sorted(len(c) for c in table.clusters)
        assert sizes == [1, 2]

    def test_distinct_entities_stay_apart(self):
        records = records_of(
            "Journal of Marine Biology", "Annals of Chemistry"
        )
        table = Matcher("title", threshold=0.8).resolve(records)
        assert table.num_clusters == 2

    def test_transitive_merging(self):
        records = records_of("alpha beta gamma", "alpha beta gamma x",
                             "alpha beta gamma x y")
        table = Matcher("title", threshold=0.75).resolve(records)
        assert table.num_clusters == 1

    def test_match_pairs_thresholded(self):
        records = records_of("abc def", "abc def", "zzz qqq")
        pairs = Matcher("title", threshold=0.99).match_pairs(records)
        assert pairs == [(0, 1)]

    def test_resolve_preserves_all_records(self):
        records = records_of("a b", "c d", "e f")
        table = Matcher("title", threshold=0.9).resolve(records)
        assert table.num_records == 3


class TestClusterByKey:
    def test_key_clustering(self):
        records = records_of("x", "y", "z", keys=["k1", "k1", "k2"])
        table = cluster_by_key(records, "key")
        assert table.num_clusters == 2
        assert len(table.clusters[0]) == 2

    def test_missing_keys_become_singletons(self):
        records = records_of("x", "y", keys=["k1", ""])
        table = cluster_by_key(records, "key")
        assert table.num_clusters == 2

    def test_columns_inferred(self):
        records = records_of("x", keys=["k"])
        table = cluster_by_key(records, "key")
        assert set(table.columns) == {"title", "key"}


class TestHybridSimilarity:
    def test_identical(self):
        assert hybrid_similarity("abc", "abc") == 1.0

    def test_case_insensitive(self):
        assert hybrid_similarity("ABC", "abc") == 1.0

    def test_orders_sensible(self):
        close = hybrid_similarity("Journal of Biology", "J of Biology")
        far = hybrid_similarity("Journal of Biology", "Annals of Physics")
        assert close > far
