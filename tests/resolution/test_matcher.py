"""Tests for the end-to-end entity resolver."""

import pytest

from repro.data.table import Record
from repro.resolution.matcher import (
    Matcher,
    PairDecisionMemo,
    cluster_by_key,
    hybrid_similarity,
    thresholded,
)


def records_of(*values, attribute="title", keys=None):
    return [
        Record(
            f"r{i}",
            {attribute: v, **({"key": keys[i]} if keys else {})},
        )
        for i, v in enumerate(values)
    ]


class TestMatcher:
    def test_variants_cluster_together(self):
        records = records_of(
            "Journal of Applied Biology",
            "Journal of Applied Biology.",
            "Physics Letters",
        )
        table = Matcher("title", threshold=0.75).resolve(records)
        sizes = sorted(len(c) for c in table.clusters)
        assert sizes == [1, 2]

    def test_distinct_entities_stay_apart(self):
        records = records_of(
            "Journal of Marine Biology", "Annals of Chemistry"
        )
        table = Matcher("title", threshold=0.8).resolve(records)
        assert table.num_clusters == 2

    def test_transitive_merging(self):
        records = records_of("alpha beta gamma", "alpha beta gamma x",
                             "alpha beta gamma x y")
        table = Matcher("title", threshold=0.75).resolve(records)
        assert table.num_clusters == 1

    def test_match_pairs_thresholded(self):
        records = records_of("abc def", "abc def", "zzz qqq")
        pairs = Matcher("title", threshold=0.99).match_pairs(records)
        assert pairs == [(0, 1)]

    def test_resolve_preserves_all_records(self):
        records = records_of("a b", "c d", "e f")
        table = Matcher("title", threshold=0.9).resolve(records)
        assert table.num_records == 3


class TestClusterByKey:
    def test_key_clustering(self):
        records = records_of("x", "y", "z", keys=["k1", "k1", "k2"])
        table = cluster_by_key(records, "key")
        assert table.num_clusters == 2
        assert len(table.clusters[0]) == 2

    def test_missing_keys_become_singletons(self):
        records = records_of("x", "y", keys=["k1", ""])
        table = cluster_by_key(records, "key")
        assert table.num_clusters == 2

    def test_columns_inferred(self):
        records = records_of("x", keys=["k"])
        table = cluster_by_key(records, "key")
        assert set(table.columns) == {"title", "key"}


class TestHybridSimilarity:
    def test_identical(self):
        assert hybrid_similarity("abc", "abc") == 1.0

    def test_case_insensitive(self):
        assert hybrid_similarity("ABC", "abc") == 1.0

    def test_orders_sensible(self):
        close = hybrid_similarity("Journal of Biology", "J of Biology")
        far = hybrid_similarity("Journal of Biology", "Annals of Physics")
        assert close > far

    @pytest.mark.parametrize("cutoff", [0.3, 0.5, 0.7, 0.8, 0.95])
    def test_cutoff_threshold_decisions_identical(self, cutoff):
        pairs = [
            ("Journal of Biology", "J of Biology"),
            ("Journal of Biology", "Journal of Biology."),
            ("Journal of Biology", "Annals of Physics"),
            ("5 Main St", "5 Main Street"),
            ("short", "a very much longer string entirely"),
            ("", "nonempty"),
            ("exact match", "exact match"),
        ]
        for a, b in pairs:
            exact = hybrid_similarity(a, b)
            cut = hybrid_similarity(a, b, score_cutoff=cutoff)
            assert (cut >= cutoff) == (exact >= cutoff), (a, b)
            if exact >= cutoff:  # exact result whenever it clears
                assert cut == exact


class TestThresholded:
    def test_cutoff_aware_function_gets_the_threshold(self):
        decide = thresholded(hybrid_similarity, 0.8)
        assert decide("5 Main St", "5 Main St") is True
        assert decide("5 Main St", "zzz qqq xxx yyy www") is False

    def test_plain_two_arg_callable_works_unchanged(self):
        decide = thresholded(lambda a, b: 1.0 if a == b else 0.0, 0.5)
        assert decide("x", "x") is True
        assert decide("x", "y") is False

    def test_memo_caches_without_changing_decisions(self):
        calls = []

        def spy(a, b):
            calls.append((a, b))
            return hybrid_similarity(a, b)

        memo = PairDecisionMemo(spy, 0.8)
        assert memo("5 Main St", "5 Main Street") == memo(
            "5 Main St", "5 Main Street"
        )
        assert len(calls) == 1  # second lookup hit the memo

    def test_memo_capacity_bounds_growth(self):
        memo = PairDecisionMemo(hybrid_similarity, 0.5, capacity=3)
        for i in range(10):
            memo(f"value {i}", f"value {i + 1}")
        assert len(memo._memo) <= 3
