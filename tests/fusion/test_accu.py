"""Tests for the Accu (Bayesian source accuracy) substrate."""

import pytest

from repro.data.table import ClusterTable, Record
from repro.fusion.accu import Accu, fuse


def table_with_sources(*clusters, column="v"):
    table = ClusterTable([column])
    for ci, records in enumerate(clusters):
        table.add_cluster(
            f"c{ci}",
            [
                Record(f"r{ci}_{i}", {column: value}, source)
                for i, (source, value) in enumerate(records)
            ],
        )
    return table


class TestAccu:
    def test_majority_wins(self):
        table = table_with_sources(
            [("s1", "right"), ("s2", "right"), ("s3", "wrong")],
        )
        assert fuse(table, "v")[0] == "right"

    def test_accurate_source_outvotes(self):
        table = table_with_sources(
            [("s1", "a"), ("s3", "b")],
            [("s1", "x"), ("s2", "x"), ("s3", "y")],
            [("s1", "p"), ("s2", "p"), ("s3", "q")],
        )
        model = Accu()
        golden = model.fuse(table, "v")
        assert golden[0] == "a"
        assert model.accuracy["s1"] > model.accuracy["s3"]

    def test_probabilities_normalized(self):
        table = table_with_sources(
            [("s1", "a"), ("s2", "b"), ("s3", "c")],
        )
        model = Accu()
        model.fuse(table, "v")
        probs = model._value_probabilities(
            {"a": ["s1"], "b": ["s2"], "c": ["s3"]}
        )
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_accuracy_bounds_respected(self):
        table = table_with_sources(
            [("s1", "a"), ("s2", "a")],
            [("s1", "b"), ("s2", "b")],
        )
        model = Accu(max_iterations=50)
        model.fuse(table, "v")
        assert all(0.0 <= a <= 1.0 for a in model.accuracy.values())

    def test_invalid_initial_accuracy(self):
        with pytest.raises(ValueError):
            Accu(initial_accuracy=0.0)

    def test_deterministic(self):
        table = table_with_sources(
            [("s1", "a"), ("s2", "b")],
            [("s1", "x"), ("s2", "x")],
        )
        assert fuse(table, "v") == fuse(table, "v")

    def test_single_claim(self):
        table = table_with_sources([("s1", "only")])
        assert fuse(table, "v")[0] == "only"
