"""Tests for the shared claim model."""

from repro.data.table import ClusterTable, Record
from repro.fusion.base import Claim, claims_from_table, group_claims


def test_claims_extracted_per_record():
    table = ClusterTable(["v"])
    table.add_cluster(
        "c0",
        [Record("r0", {"v": "a"}, "s1"), Record("r1", {"v": "b"}, "s2")],
    )
    claims = claims_from_table(table, "v")
    assert Claim("s1", 0, "a") in claims
    assert Claim("s2", 0, "b") in claims


def test_missing_source_gets_synthetic_tag():
    table = ClusterTable(["v"])
    table.add_cluster("c0", [Record("r0", {"v": "a"})])
    claims = claims_from_table(table, "v")
    assert claims[0].source.startswith("__record_")


def test_empty_values_skipped():
    table = ClusterTable(["v"])
    table.add_cluster("c0", [Record("r0", {"v": ""})])
    assert claims_from_table(table, "v") == []


def test_group_claims_structure():
    claims = [Claim("s1", 0, "a"), Claim("s2", 0, "a"), Claim("s1", 1, "b")]
    grouped = group_claims(claims)
    assert grouped[0]["a"] == ["s1", "s2"]
    assert grouped[1]["b"] == ["s1"]
