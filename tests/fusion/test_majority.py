"""Tests for majority consensus (Section 8.3)."""

import pytest

from repro.data.table import ClusterTable, Record
from repro.fusion.majority import fuse, majority_value


def table_of(*clusters, column="v"):
    table = ClusterTable([column])
    for ci, values in enumerate(clusters):
        table.add_cluster(
            f"c{ci}",
            [Record(f"r{ci}_{i}", {column: v}) for i, v in enumerate(values)],
        )
    return table


class TestMajorityValue:
    def test_clear_majority(self):
        assert majority_value(["a", "a", "b"]) == "a"

    def test_tie_yields_none(self):
        # Paper: "if there are two values with the same frequency, MC
        # could not produce a golden value."
        assert majority_value(["a", "b"]) is None

    def test_singleton(self):
        assert majority_value(["a"]) == "a"

    def test_empty(self):
        assert majority_value([]) is None

    def test_empty_strings_ignored(self):
        assert majority_value(["", "", "a"]) == "a"

    def test_tie_between_two_of_three(self):
        assert majority_value(["a", "a", "b", "b", "c"]) is None


class TestFuse:
    def test_per_cluster(self):
        table = table_of(["x", "x", "y"], ["q"])
        golden = fuse(table, "v")
        assert golden == {0: "x", 1: "q"}

    def test_standardization_breaks_ties(self):
        """The Table 8 mechanism: merging variants unlocks MC."""
        before = table_of(["Journal of Biology", "J of Biology"])
        assert fuse(before, "v")[0] is None
        after = table_of(["Journal of Biology", "Journal of Biology"])
        assert fuse(after, "v")[0] == "Journal of Biology"
