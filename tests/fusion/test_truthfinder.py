"""Tests for the TruthFinder substrate."""

import pytest

from repro.data.table import ClusterTable, Record
from repro.fusion.truthfinder import TruthFinder, default_implication, fuse


def table_with_sources(*clusters, column="v"):
    table = ClusterTable([column])
    for ci, records in enumerate(clusters):
        table.add_cluster(
            f"c{ci}",
            [
                Record(f"r{ci}_{i}", {column: value}, source)
                for i, (source, value) in enumerate(records)
            ],
        )
    return table


class TestTruthFinder:
    def test_majority_agreement_wins(self):
        table = table_with_sources(
            [("s1", "right"), ("s2", "right"), ("s3", "wrong")],
        )
        assert fuse(table, "v")[0] == "right"

    def test_reliable_source_breaks_ties(self):
        # s1 and s2 agree on every other object, s3 is always the odd
        # one out; on the contested object s1's claim should win.
        table = table_with_sources(
            [("s1", "a"), ("s3", "b")],
            [("s1", "x"), ("s2", "x"), ("s3", "y")],
            [("s1", "p"), ("s2", "p"), ("s3", "q")],
        )
        finder = TruthFinder()
        golden = finder.fuse(table, "v")
        assert golden[1] == "x" and golden[2] == "p"
        assert golden[0] == "a"
        assert finder.trust["s1"] > finder.trust["s3"]

    def test_trust_scores_bounded(self):
        table = table_with_sources(
            [("s1", "a"), ("s2", "a"), ("s3", "b")],
        )
        finder = TruthFinder()
        finder.fuse(table, "v")
        assert all(0.0 <= t <= 1.0 for t in finder.trust.values())

    def test_records_without_source_vote_independently(self):
        table = ClusterTable(["v"])
        table.add_cluster(
            "c0",
            [Record("r0", {"v": "a"}), Record("r1", {"v": "a"}),
             Record("r2", {"v": "b"})],
        )
        assert fuse(table, "v")[0] == "a"

    def test_empty_values_skipped(self):
        table = table_with_sources([("s1", ""), ("s2", "x")])
        assert fuse(table, "v")[0] == "x"

    def test_invalid_initial_trust(self):
        with pytest.raises(ValueError):
            TruthFinder(initial_trust=1.5)

    def test_implication_supports_similar_values(self):
        assert default_implication("a b c", "a b d") > default_implication(
            "a b c", "x y z"
        )

    def test_deterministic(self):
        table = table_with_sources(
            [("s1", "a"), ("s2", "b")],
            [("s1", "x"), ("s2", "x")],
        )
        assert fuse(table, "v") == fuse(table, "v")
