"""Tests for the configuration object."""

import pytest

from repro.config import Config, DEFAULT_CONFIG


class TestDefaults:
    def test_paper_settings(self):
        assert DEFAULT_CONFIG.use_affix is True
        assert DEFAULT_CONFIG.use_structure is True
        assert DEFAULT_CONFIG.max_path_length == 6  # Section 8.2

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.use_affix = False


class TestVariants:
    def test_without_early_termination(self):
        config = DEFAULT_CONFIG.without_early_termination()
        assert not config.local_threshold and not config.global_threshold
        assert DEFAULT_CONFIG.local_threshold  # original untouched

    def test_with_early_termination(self):
        config = Config(local_threshold=False).with_early_termination()
        assert config.local_threshold and config.global_threshold

    def test_without_affix(self):
        config = DEFAULT_CONFIG.without_affix()
        assert not config.use_affix
        assert config.use_structure == DEFAULT_CONFIG.use_structure

    def test_variants_preserve_other_fields(self):
        base = Config(max_path_length=3, seed=42)
        assert base.without_affix().max_path_length == 3
        assert base.without_early_termination().seed == 42
