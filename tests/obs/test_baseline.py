"""Tests for the BENCH regression gate (``repro bench check``)."""

import json
from pathlib import Path

import pytest

from repro.obs.baseline import (
    DEFAULT_TOLERANCE,
    build_baseline,
    check,
    direction_of,
    load_baseline,
    load_history,
    save_baseline,
)

REPO_RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
REPO_BASELINE = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "baseline.json"
)


def write_bench(results_dir, bench, rows):
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{bench}.json"
    with open(path, "a", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def stable_history(results_dir, runs=3):
    """A bench with one test series and one headline series, quiet."""
    for run in range(runs):
        write_bench(
            results_dir,
            "kernels",
            [
                {
                    "bench": "kernels",
                    "test": "test_match",
                    "outcome": "passed",
                    "seconds": 1.0 + 0.05 * run,
                },
                {
                    "bench": "kernels",
                    "speedup": 4.0 - 0.1 * run,
                    "seconds_total": 2.0,
                    "git": "abc",
                    "rows": 1000,
                },
            ],
        )


class TestDirection:
    def test_higher_is_better_markers(self):
        assert direction_of("speedup") == "higher"
        assert direction_of("throughput_rows") == "higher"
        assert direction_of("hit_ratio") == "higher"
        assert direction_of("pairs_per_second") == "higher"

    def test_lower_is_better_default(self):
        assert direction_of("seconds") == "lower"
        assert direction_of("enabled_overhead") == "lower"
        assert direction_of("bytes_shipped") == "lower"


class TestHistory:
    def test_series_keys_and_order(self, tmp_path):
        stable_history(tmp_path, runs=2)
        history = load_history(tmp_path)
        assert history["kernels::test_match"] == [1.0, 1.05]
        assert history["kernels:speedup"] == [4.0, 3.9]
        # Provenance fields never become series.
        assert "kernels:rows" not in history
        assert "kernels:git" not in history

    def test_failed_runs_contribute_no_timing(self, tmp_path):
        write_bench(
            tmp_path,
            "kernels",
            [
                {
                    "bench": "kernels",
                    "test": "test_match",
                    "outcome": "failed",
                    "seconds": 99.0,
                }
            ],
        )
        assert load_history(tmp_path) == {}

    def test_torn_lines_skipped(self, tmp_path):
        stable_history(tmp_path, runs=1)
        path = tmp_path / "BENCH_kernels.json"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"bench": "kernels", "torn')
        history = load_history(tmp_path)
        assert history["kernels::test_match"] == [1.0]


class TestBuildBaseline:
    def test_median_and_direction(self, tmp_path):
        stable_history(tmp_path, runs=3)
        baseline = build_baseline(tmp_path)
        entry = baseline["metrics"]["kernels::test_match"]
        assert entry["baseline"] == 1.05  # median of 1.0, 1.05, 1.1
        assert entry["direction"] == "lower"
        assert entry["points"] == 3
        assert baseline["metrics"]["kernels:speedup"]["direction"] == (
            "higher"
        )

    def test_unstable_series_skipped(self, tmp_path):
        stable_history(tmp_path, runs=1)
        write_bench(
            tmp_path, "noisy", [{"bench": "noisy", "jitter_seconds": 0.001}]
        )
        write_bench(
            tmp_path, "noisy", [{"bench": "noisy", "jitter_seconds": 0.1}]
        )
        baseline = build_baseline(tmp_path, max_spread=4.0)
        assert "noisy:jitter_seconds" not in baseline["metrics"]
        assert "unstable history" in baseline["skipped"][
            "noisy:jitter_seconds"
        ]

    def test_non_positive_series_skipped(self, tmp_path):
        write_bench(
            tmp_path, "odd", [{"bench": "odd", "delta_seconds": 0.0}]
        )
        baseline = build_baseline(tmp_path)
        assert baseline["metrics"] == {}
        assert "non-positive" in baseline["skipped"]["odd:delta_seconds"]

    def test_save_and_load_round_trip(self, tmp_path):
        stable_history(tmp_path, runs=2)
        baseline = build_baseline(tmp_path)
        path = tmp_path / "baseline.json"
        save_baseline(baseline, path)
        assert load_baseline(path) == baseline

    def test_load_rejects_non_baseline(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"not": "a baseline"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a baseline"):
            load_baseline(path)


class TestCheck:
    def test_stable_history_passes(self, tmp_path):
        stable_history(tmp_path, runs=3)
        baseline = build_baseline(tmp_path)
        results, missing = check(tmp_path, baseline)
        assert results and all(result.ok for result in results)
        assert missing == []

    def test_injected_2x_slower_row_fails(self, tmp_path):
        stable_history(tmp_path, runs=3)
        baseline = build_baseline(tmp_path)
        write_bench(
            tmp_path,
            "kernels",
            [
                {
                    "bench": "kernels",
                    "test": "test_match",
                    "outcome": "passed",
                    "seconds": 2.2,  # ~2x the 1.05 baseline
                }
            ],
        )
        results, _ = check(tmp_path, baseline)
        bad = [r for r in results if not r.ok]
        assert [r.series for r in bad] == ["kernels::test_match"]
        assert "REGRESSION" in bad[0].describe()

    def test_higher_is_better_gates_downward(self, tmp_path):
        stable_history(tmp_path, runs=3)
        baseline = build_baseline(tmp_path)
        write_bench(
            tmp_path,
            "kernels",
            [{"bench": "kernels", "speedup": 1.5, "seconds_total": 2.0}],
        )
        results, _ = check(tmp_path, baseline)
        by_series = {result.series: result for result in results}
        assert not by_series["kernels:speedup"].ok  # 1.5 < 3.9 / 1.5
        assert by_series["kernels:seconds_total"].ok

    def test_missing_series_reported_not_failed(self, tmp_path):
        stable_history(tmp_path, runs=2)
        baseline = build_baseline(tmp_path)
        baseline["metrics"]["other::test_gone"] = {
            "baseline": 1.0,
            "direction": "lower",
            "points": 2,
        }
        results, missing = check(tmp_path, baseline)
        assert missing == ["other::test_gone"]
        assert all(result.ok for result in results)

    def test_tolerance_must_be_multiplicative(self, tmp_path):
        stable_history(tmp_path, runs=1)
        baseline = build_baseline(tmp_path)
        with pytest.raises(ValueError, match="tolerance"):
            check(tmp_path, baseline, tolerance=1.0)


class TestCommittedBaseline:
    """The repo's own committed baseline stays green against the
    committed history — the exact gate CI's perf-smoke job runs."""

    def test_repo_history_passes_committed_baseline(self):
        if not REPO_BASELINE.exists():
            pytest.skip("no committed baseline")
        baseline = load_baseline(REPO_BASELINE)
        results, _missing = check(
            REPO_RESULTS, baseline, tolerance=DEFAULT_TOLERANCE
        )
        failing = [r.describe() for r in results if not r.ok]
        assert not failing, "\n".join(failing)
