"""Tests for span tracing (nesting, emission, histogram fan-out)."""

import time

from repro.obs import MemorySink, MetricsRegistry, NULL_OBS, Obs
from repro.obs.trace import NULL_TRACER, Span, Tracer


class TestSpanTiming:
    def test_span_times_even_unattached(self):
        span = Span("work", {}, tracer=None)
        with span:
            time.sleep(0.01)
        assert span.seconds >= 0.005

    def test_null_tracer_spans_time(self):
        with NULL_TRACER.span("work") as span:
            time.sleep(0.01)
        assert span.seconds >= 0.005
        assert not NULL_TRACER.trace

    def test_null_obs_spans_time(self):
        with NULL_OBS.span("work") as span:
            time.sleep(0.01)
        assert span.seconds >= 0.005


class TestTracerEmission:
    def test_no_rows_without_trace_flag(self):
        sink = MemorySink()
        tracer = Tracer(
            registry=MetricsRegistry(), emit=sink.emit, trace=False
        )
        with tracer.span("a"):
            pass
        assert sink.rows == []

    def test_trace_rows_carry_nesting(self):
        sink = MemorySink()
        tracer = Tracer(
            registry=MetricsRegistry(), emit=sink.emit, trace=True
        )
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # Inner exits first, so it is the first row.
        inner, outer = sink.rows
        assert inner["span"] == "inner"
        assert inner["parent"] == "outer"
        assert inner["depth"] == 1
        assert outer["span"] == "outer"
        assert outer["parent"] is None
        assert outer["depth"] == 0
        assert inner["seq"] < outer["seq"]
        assert all(row["type"] == "span" for row in sink.rows)

    def test_tags_recorded_sorted(self):
        sink = MemorySink()
        tracer = Tracer(
            registry=MetricsRegistry(), emit=sink.emit, trace=True
        )
        with tracer.span("batch", batch=3, column="address"):
            pass
        assert sink.rows[0]["tags"] == {"batch": 3, "column": "address"}
        assert list(sink.rows[0]["tags"]) == ["batch", "column"]

    def test_trace_without_emit_disables_rows(self):
        tracer = Tracer(registry=MetricsRegistry(), emit=None, trace=True)
        assert not tracer.trace
        with tracer.span("a"):
            pass  # must not raise trying to emit


class TestTracerHistograms:
    def test_span_durations_land_in_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("stream.learn"):
            pass
        with tracer.span("stream.learn"):
            pass
        snap = registry.snapshot()
        assert snap["span.seconds{span=stream.learn}"]["count"] == 2

    def test_span_histograms_are_volatile(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("stream.learn"):
            pass
        assert registry.snapshot(deterministic_only=True) == {}


class TestObsFacade:
    def test_event_rows(self):
        obs = Obs()
        obs.event("drift", batch=3, miss_rate=0.8)
        assert obs.sink.rows == [
            {"type": "event", "event": "drift", "batch": 3, "miss_rate": 0.8}
        ]

    def test_flush_snapshot_row(self):
        obs = Obs()
        obs.metrics.counter("stream.merges").inc(2)
        obs.metrics.counter("t", deterministic=False).inc(9)
        obs.flush_snapshot(deterministic_only=True)
        row = obs.sink.rows[-1]
        assert row["type"] == "snapshot"
        assert row["deterministic"] is True
        assert row["metrics"] == {"stream.merges": 2}

    def test_close_closes_sink(self):
        obs = Obs()
        obs.close()
        assert obs.sink.closed

    def test_null_obs_is_inert(self):
        assert not NULL_OBS.enabled
        NULL_OBS.emit({"type": "meta"})
        NULL_OBS.event("drift")
        NULL_OBS.flush_snapshot()
        NULL_OBS.close()
        assert NULL_OBS.metrics.snapshot() == {}
