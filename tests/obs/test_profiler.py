"""Tests for the sampling profiler (collapsed stacks, span attribution)."""

import json
import time

import pytest

from repro.obs import MemorySink, Obs
from repro.obs.profiler import SamplingProfiler, _frame_label


def spin(seconds):
    """Burn CPU under a recognizable frame name."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSampling:
    def test_busy_loop_is_sampled(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.2)
        assert profiler.samples > 0
        assert profiler.seconds > 0.1
        stacks = "\n".join(stack for stack, _span in profiler.counts)
        assert "test_profiler.py:spin" in stacks

    def test_span_attribution(self):
        obs = Obs(sink=MemorySink(), trace=True)
        profiler = SamplingProfiler(interval=0.001, tracer=obs.tracer)
        with profiler:
            with obs.span("stream.learn"):
                spin(0.15)
        spans = {span for _stack, span in profiler.counts}
        assert "stream.learn" in spans

    def test_start_twice_raises(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_is_noop(self):
        SamplingProfiler().stop()

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            SamplingProfiler(interval=0.0)


class TestOutput:
    def fake(self):
        profiler = SamplingProfiler(interval=0.005)
        profiler.counts = {
            ("a.py:f;a.py:g", "stream.learn"): 5,
            ("a.py:f;a.py:h", None): 2,
            ("a.py:f;a.py:g", None): 1,
        }
        profiler.samples = 8
        profiler.seconds = 0.04
        return profiler

    def test_rows_heaviest_first(self):
        rows = self.fake().rows()
        assert [row["count"] for row in rows] == [5, 2, 1]
        assert rows[0] == {
            "type": "profile",
            "stack": "a.py:f;a.py:g",
            "span": "stream.learn",
            "count": 5,
        }

    def test_collapsed_lines_merge_spans(self):
        lines = self.fake().collapsed_lines()
        # Same stack under different spans merges: 5 + 1 = 6.
        assert lines[0] == "a.py:f;a.py:g 6"
        assert "a.py:f;a.py:h 2" in lines

    def test_collapsed_lines_by_span_roots(self):
        lines = self.fake().collapsed_lines(by_span=True)
        assert "stream.learn;a.py:f;a.py:g 5" in lines
        assert "(no span);a.py:f;a.py:h 2" in lines

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "profile.jsonl"
        self.fake().write(path)
        rows = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert rows[0]["type"] == "meta"
        assert rows[0]["command"] == "profile"
        assert rows[0]["samples"] == 8
        assert [r["type"] for r in rows[1:]] == ["profile"] * 3


class TestFrameLabel:
    def test_basename_and_function(self):
        frame = next(iter(__import__("sys")._current_frames().values()))
        label = _frame_label(frame)
        assert ":" in label
        assert "/" not in label.split(":", 1)[0]
