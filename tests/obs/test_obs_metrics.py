"""Tests for the metrics substrate (counters / gauges / histograms)."""

import json
import math
import random

import pytest

from repro.obs.metrics import (
    HISTOGRAM_GROWTH,
    MetricsRegistry,
    NULL_REGISTRY,
    metric_key,
)


class TestMetricKey:
    def test_unlabelled_key_is_the_name(self):
        assert metric_key("stream.merges", {}) == "stream.merges"

    def test_labels_sorted_into_key(self):
        key = metric_key("apply.rows", {"column": "address", "a": "1"})
        assert key == "apply.rows{a=1,column=address}"


class TestCounter:
    def test_counts_up(self):
        registry = MetricsRegistry()
        c = registry.counter("stream.merges")
        c.inc()
        c.inc(4)
        assert c.as_value() == 5

    def test_float_amounts_accumulate(self):
        registry = MetricsRegistry()
        c = registry.counter("stage.seconds", deterministic=False)
        c.inc(0.25)
        c.inc(0.5)
        assert c.as_value() == pytest.approx(0.75)

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_labels_split_instruments(self):
        registry = MetricsRegistry()
        registry.counter("q", column="address").inc(3)
        registry.counter("q", column="title").inc(7)
        snap = registry.snapshot()
        assert snap == {"q{column=address}": 3, "q{column=title}": 7}


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        g = registry.gauge("clusters.live")
        g.set(10)
        g.set(7)
        assert g.as_value() == 7

    def test_inc_moves_the_gauge(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.inc(2)
        g.inc(-1)
        assert g.as_value() == 1


class TestHistogram:
    def test_summary_stats(self):
        registry = MetricsRegistry()
        h = registry.histogram("t", deterministic=False)
        for value in (0.1, 0.2, 0.4):
            h.observe(value)
        value = h.as_value()
        assert value["count"] == 3
        assert value["total"] == pytest.approx(0.7)
        assert value["min"] == pytest.approx(0.1)
        assert value["max"] == pytest.approx(0.4)
        assert value["mean"] == pytest.approx(0.7 / 3)

    def test_quantile_error_bounded_by_bucket_width(self):
        registry = MetricsRegistry()
        h = registry.histogram("t", deterministic=False)
        rng = random.Random(7)
        values = sorted(rng.uniform(0.001, 10.0) for _ in range(500))
        for value in values:
            h.observe(value)
        for q in (0.5, 0.95, 0.99):
            exact = values[max(0, math.ceil(q * len(values)) - 1)]
            # Geometric buckets keep the estimate within half a bucket
            # (~sqrt(GROWTH)) of the true quantile.
            assert h.quantile(q) / exact <= HISTOGRAM_GROWTH
            assert exact / h.quantile(q) <= HISTOGRAM_GROWTH

    def test_quantiles_clamped_to_observed_range(self):
        registry = MetricsRegistry()
        h = registry.histogram("t", deterministic=False)
        h.observe(3.0)
        assert h.p50 == 3.0
        assert h.p99 == 3.0

    def test_zero_observations_fold_into_underflow(self):
        registry = MetricsRegistry()
        h = registry.histogram("t", deterministic=False)
        h.observe(0.0)
        h.observe(0.0)
        assert h.count == 2
        assert h.p50 == 0.0

    def test_empty_histogram_quantile_is_zero(self):
        registry = MetricsRegistry()
        h = registry.histogram("t", deterministic=False)
        assert h.p95 == 0.0
        assert h.as_value()["min"] is None

    def test_quantile_rejects_out_of_range(self):
        registry = MetricsRegistry()
        h = registry.histogram("t", deterministic=False)
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_merge_equals_union_of_observations(self):
        registry = MetricsRegistry()
        a = registry.histogram("a", deterministic=False)
        b = registry.histogram("b", deterministic=False)
        both = registry.histogram("c", deterministic=False)
        rng = random.Random(3)
        for _ in range(200):
            value = rng.uniform(0.01, 5.0)
            (a if rng.random() < 0.5 else b).observe(value)
            both.observe(value)
        a.merge(b)
        assert a.as_value() == both.as_value()

    def test_order_independent_state(self):
        registry = MetricsRegistry()
        forward = registry.histogram("f", deterministic=False)
        backward = registry.histogram("b", deterministic=False)
        values = [0.1 * i for i in range(1, 50)]
        for value in values:
            forward.observe(value)
        for value in reversed(values):
            backward.observe(value)
        assert forward.as_value() == backward.as_value()


class TestRegistry:
    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="is a counter"):
            registry.gauge("x")

    def test_snapshot_sorted_and_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(2)
        registry.histogram("c", deterministic=False).observe(0.5)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise

    def test_deterministic_only_drops_volatile(self):
        registry = MetricsRegistry()
        registry.counter("stream.merges").inc(3)
        registry.counter("stream.bytes", deterministic=False).inc(100)
        registry.histogram("t", deterministic=False).observe(0.1)
        snap = registry.snapshot(deterministic_only=True)
        assert snap == {"stream.merges": 3}

    def test_volatile_marking_is_sticky(self):
        registry = MetricsRegistry()
        registry.counter("x", deterministic=False).inc()
        # A later deterministic-looking access must not launder it.
        registry.counter("x").inc()
        assert registry.snapshot(deterministic_only=True) == {}

    def test_instruments_in_stable_order(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.counter("a")
        names = [i.name for i in registry.instruments()]
        assert names == ["a", "z"]


class TestNullRegistry:
    def test_disabled_and_empty(self):
        assert not NULL_REGISTRY.enabled
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == {}
        assert tuple(NULL_REGISTRY.instruments()) == ()

    def test_instruments_accept_writes_and_store_nothing(self):
        NULL_REGISTRY.counter("a").inc(5)
        NULL_REGISTRY.gauge("b").set(3)
        NULL_REGISTRY.histogram("c").observe(0.1)
        assert NULL_REGISTRY.counter("a").as_value() == 0
        assert len(NULL_REGISTRY) == 0

    def test_shared_singleton_instrument(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.gauge("b")
