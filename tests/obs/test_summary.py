"""Tests for the metrics-file reader, validator, and summarizer."""

import json

import pytest

from repro.obs import metric_key
from repro.obs.summary import (
    build_span_forest,
    forest_shape,
    format_summary,
    format_trace_tree,
    iter_rows,
    parse_metric_key,
    summarize,
    validate_rows,
)


def write_rows(path, rows):
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")


class TestParseMetricKey:
    def test_plain_key(self):
        assert parse_metric_key("stream.merges") == ("stream.merges", {})

    def test_labelled_key(self):
        name, labels = parse_metric_key("q{a=1,column=address}")
        assert name == "q"
        assert labels == {"a": "1", "column": "address"}

    def test_empty_label_set(self):
        assert parse_metric_key("q{}") == ("q", {})


class TestIterRows:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        rows = [{"type": "meta", "command": "stream"}, {"type": "event"}]
        write_rows(path, rows)
        assert list(iter_rows(path)) == rows

    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_rows(path, [{"type": "meta", "command": "stream"}])
        with open(path, "ab") as handle:
            handle.write(b'{"type": "batch", "ba')
        rows = list(iter_rows(path))
        assert [row["type"] for row in rows] == ["meta"]

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            '{"type": "meta", "command": "stream"}\n'
            "not json\n"
            '{"type": "event"}\n',
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="corrupt metrics row"):
            list(iter_rows(path))

    def test_terminated_malformed_final_line_raises(self, tmp_path):
        # A newline-terminated line was complete when flushed, so
        # malformed means corruption, not a crash signature.
        path = tmp_path / "m.jsonl"
        path.write_text(
            '{"type": "meta", "command": "stream"}\nnot json\n',
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="corrupt metrics row"):
            list(iter_rows(path))

    def test_non_object_row_raises(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text("[1, 2]\n{}\n", encoding="utf-8")
        with pytest.raises(ValueError):
            list(iter_rows(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_bytes(b"")
        assert list(iter_rows(path)) == []


class TestValidateRows:
    def test_valid_rows_pass(self):
        rows = [
            {"type": "meta", "command": "stream"},
            {"type": "batch", "batch": 0, "records": 10, "seconds": 0.5},
            {
                "type": "span",
                "span": "stream.learn",
                "seconds": 0.1,
                "depth": 1,
                "seq": 3,
            },
            {"type": "event", "event": "drift"},
            {"type": "snapshot", "deterministic": True, "metrics": {}},
        ]
        assert validate_rows(rows) == []

    def test_unknown_type_flagged(self):
        problems = validate_rows([{"type": "bogus"}])
        assert len(problems) == 1
        assert "unknown type" in problems[0]

    def test_missing_field_flagged(self):
        problems = validate_rows([{"type": "meta"}])
        assert any("missing field 'command'" in p for p in problems)

    def test_wrong_type_flagged(self):
        problems = validate_rows(
            [{"type": "batch", "batch": "0", "records": 1, "seconds": 0.1}]
        )
        assert any("'batch'" in p for p in problems)

    def test_bool_is_not_an_int(self):
        problems = validate_rows(
            [{"type": "batch", "batch": True, "records": 1, "seconds": 0.1}]
        )
        assert any("'batch'" in p for p in problems)


class TestSummarize:
    def rows(self):
        return [
            {"type": "meta", "command": "stream", "dataset": "Address"},
            {
                "type": "batch",
                "batch": 0,
                "records": 20,
                "seconds": 1.0,
                "questions_asked": 5,
                "stage_seconds": {"learn": 0.8, "engine": 0.1},
            },
            {
                "type": "batch",
                "batch": 1,
                "records": 30,
                "seconds": 2.0,
                "questions_asked": 3,
                "stage_seconds": {"learn": 1.5, "engine": 0.2},
            },
            {
                "type": "span",
                "span": "stream.learn",
                "seconds": 0.8,
                "depth": 1,
                "seq": 1,
            },
            {"type": "event", "event": "drift", "batch": 1, "miss_rate": 0.9},
            {
                "type": "snapshot",
                "deterministic": False,
                "metrics": {
                    "stream.questions{column=address}": 8,
                    "apply.rows": 40,
                    "apply.exact_hits": 10,
                    "apply.program_hits": 6,
                    "apply.token_hits": 4,
                    "apply.misses": 20,
                    "apply.cache_hits": 3,
                },
            },
        ]

    def test_totals(self):
        summary = summarize(self.rows())
        assert summary["batches"] == 2
        assert summary["records"] == 50
        assert summary["total_seconds"] == pytest.approx(3.0)
        assert summary["questions_asked"] == 8

    def test_stage_breakdown(self):
        summary = summarize(self.rows())
        assert summary["stages"] == {
            "engine": pytest.approx(0.3),
            "learn": pytest.approx(2.3),
        }

    def test_snapshot_questions_win(self):
        summary = summarize(self.rows())
        assert summary["questions_by_column"] == {"address": 8}

    def test_apply_hit_ratios(self):
        summary = summarize(self.rows())
        ratios = summary["apply"]["hit_ratios"]
        assert ratios["exact_hits"] == pytest.approx(0.25)
        assert ratios["misses"] == pytest.approx(0.5)

    def test_labelled_apply_counters_aggregate(self):
        rows = [
            {
                "type": "snapshot",
                "deterministic": False,
                "metrics": {
                    "apply.rows{column=a}": 10,
                    "apply.rows{column=b}": 30,
                    "apply.exact_hits{column=a}": 10,
                    "apply.exact_hits{column=b}": 10,
                },
            }
        ]
        summary = summarize(rows)
        assert summary["apply"]["rows"] == 40
        assert summary["apply"]["hit_ratios"]["exact_hits"] == (
            pytest.approx(0.5)
        )

    def test_drift_events_and_spans(self):
        summary = summarize(self.rows())
        assert len(summary["drift_events"]) == 1
        assert summary["spans"]["stream.learn"]["count"] == 1

    def test_empty_input(self):
        summary = summarize([])
        assert summary["batches"] == 0
        assert summary["stages"] == {}
        assert summary["apply"] == {}


class TestFormatSummary:
    def test_renders_all_sections(self):
        text = format_summary(summarize(TestSummarize().rows()))
        assert "run: stream (Address)" in text
        assert "per-stage runtime (Fig. 9 view):" in text
        assert "learn" in text
        assert "oracle questions per column:" in text
        assert "address: 8" in text
        assert "apply tiers over 40 rows:" in text
        assert "drift events: 1" in text
        assert "stream.learn" in text

    def test_empty_run_renders(self):
        text = format_summary(summarize([]))
        assert "batches=0" in text


class TestMetricKeyRoundTrip:
    """metric_key quotes structural label values; parse_metric_key
    inverts it exactly."""

    def round_trip(self, name, **labels):
        key = metric_key(name, labels)
        parsed_name, parsed = parse_metric_key(key)
        assert parsed_name == name
        assert parsed == {k: str(v) for k, v in labels.items()}
        return key

    def test_plain_values_stay_bare(self):
        key = self.round_trip("q", column="address", shard=3)
        assert '"' not in key

    def test_comma_in_value(self):
        self.round_trip("q", column="Main St, Apt 4")

    def test_equals_in_value(self):
        self.round_trip("q", column="a=b")

    def test_quotes_and_backslashes_in_value(self):
        self.round_trip("q", column='say "hi" \\ bye')

    def test_braces_in_value(self):
        self.round_trip("q", column="{weird}")

    def test_mixed_quoted_and_bare_labels(self):
        key = self.round_trip("q", a="plain", b="x,y", c="z")
        name, labels = parse_metric_key(key)
        assert labels == {"a": "plain", "b": "x,y", "c": "z"}

    def test_quoted_value_parses(self):
        name, labels = parse_metric_key('q{column="a,b=c"}')
        assert (name, labels) == ("q", {"column": "a,b=c"})


def span_row(seq, span, sid, parent_id, parent, depth, seconds=0.1,
             tags=None, trace="t1"):
    row = {
        "type": "span",
        "seq": seq,
        "span": span,
        "parent": parent,
        "depth": depth,
        "seconds": seconds,
        "trace": trace,
        "id": sid,
        "parent_id": parent_id,
    }
    if tags:
        row["tags"] = tags
    return row


class TestSpanForest:
    def rows(self):
        """One batch: stream.batch > stream.resolve > 2 shard.resolve
        (one with a nested shard.match), exit-order emission."""
        return [
            span_row(1, "shard.match", 3, 2, "shard.resolve", 3,
                     tags={"shard": 0, "comparisons": 5}),
            span_row(2, "shard.resolve", 2, 1, "stream.resolve", 2,
                     tags={"shard": 0}),
            span_row(3, "shard.resolve", 4, 1, "stream.resolve", 2,
                     tags={"shard": 1}),
            span_row(4, "stream.resolve", 1, 5, "stream.batch", 1),
            span_row(5, "stream.batch", 5, None, None, 0,
                     seconds=0.5),
        ]

    def test_id_linking(self):
        forest = build_span_forest(self.rows())
        assert len(forest) == 1
        batch = forest[0]
        assert batch["name"] == "stream.batch"
        resolve = batch["children"][0]
        assert resolve["name"] == "stream.resolve"
        assert [c["name"] for c in resolve["children"]] == [
            "shard.resolve", "shard.resolve"
        ]
        assert resolve["children"][0]["children"][0]["name"] == (
            "shard.match"
        )

    def test_depth_fallback_for_old_recordings(self):
        rows = [
            {"type": "span", "seq": 1, "span": "stream.resolve",
             "parent": "stream.batch", "depth": 1, "seconds": 0.1},
            {"type": "span", "seq": 2, "span": "stream.batch",
             "parent": None, "depth": 0, "seconds": 0.5},
        ]
        forest = build_span_forest(rows)
        assert len(forest) == 1
        assert forest[0]["name"] == "stream.batch"
        assert forest[0]["children"][0]["name"] == "stream.resolve"

    def test_format_trace_tree(self):
        tree = format_trace_tree(self.rows())
        assert tree.startswith("trace tree")
        assert "stream.batch" in tree
        assert "shard.resolve[shard=0]" in tree
        assert "shard.resolve[shard=1]" in tree
        assert "shard.match[shard=0]" in tree
        # self time: batch total 0.5 minus resolve 0.1 = 0.4.
        assert "self=0.400s" in tree or "0.400" in tree

    def test_format_trace_tree_empty(self):
        assert "no span rows" in format_trace_tree([])

    def test_forest_shape_excludes_shards_by_default(self):
        shape = forest_shape(self.rows())
        assert shape == [
            ("stream.batch", (), (("stream.resolve", (), ()),))
        ]
        full = forest_shape(self.rows(), include_shards=True)
        assert full != shape
        assert "shard.resolve" in repr(full)

    def test_forest_shape_sorts_identity_tags(self):
        rows = [
            span_row(1, "stream.derive", 1, 2, "stream.batch", 1,
                     tags={"column": "b"}),
            span_row(2, "stream.derive", 3, 2, "stream.batch", 1,
                     tags={"column": "a"}),
            span_row(3, "stream.batch", 2, None, None, 0),
        ]
        shape = forest_shape(rows)
        children = shape[0][2]
        assert children == tuple(sorted(children))
