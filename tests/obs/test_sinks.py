"""Tests for the JSON-lines sink (torn-tail repair) and the
Prometheus text writer."""

import json

from repro.obs import JsonlSink, MemorySink, MetricsRegistry, prometheus_text
from repro.obs.summary import iter_rows


class TestMemorySink:
    def test_collects_rows(self):
        sink = MemorySink()
        sink.emit({"type": "meta"})
        sink.emit({"type": "event"})
        assert [row["type"] for row in sink.rows] == ["meta", "event"]
        sink.close()
        assert sink.closed


class TestJsonlSink:
    def test_writes_sorted_flushed_lines(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = JsonlSink(path)
        sink.emit({"b": 2, "a": 1, "type": "meta"})
        # Flushed per emit: readable before close.
        line = path.read_text(encoding="utf-8")
        assert line == '{"a": 1, "b": 2, "type": "meta"}\n'
        sink.close()

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "er" / "m.jsonl"
        JsonlSink(path).close()
        assert path.exists()

    def test_append_preserves_existing_rows(self, tmp_path):
        path = tmp_path / "m.jsonl"
        first = JsonlSink(path)
        first.emit({"type": "meta", "run": 1})
        first.close()
        second = JsonlSink(path)
        second.emit({"type": "meta", "run": 2})
        second.close()
        runs = [row["run"] for row in iter_rows(path)]
        assert runs == [1, 2]

    def test_reopen_truncates_torn_fragment(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "meta", "run": 1})
        sink.close()
        # A kill mid-write leaves a torn fragment with no newline.
        with open(path, "ab") as handle:
            handle.write(b'{"type": "batch", "ba')
        repaired = JsonlSink(path)
        repaired.emit({"type": "event", "event": "after"})
        repaired.close()
        rows = list(iter_rows(path))
        assert [row["type"] for row in rows] == ["meta", "event"]

    def test_reopen_terminates_intact_unterminated_row(self, tmp_path):
        path = tmp_path / "m.jsonl"
        # Complete JSON, missing only the newline: keep it.
        path.write_bytes(b'{"type": "meta", "run": 1}')
        sink = JsonlSink(path)
        sink.emit({"type": "event", "event": "after"})
        sink.close()
        rows = list(iter_rows(path))
        assert [row["type"] for row in rows] == ["meta", "event"]

    def test_whole_file_torn_fragment_truncated_to_empty(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_bytes(b'{"type": "me')
        sink = JsonlSink(path)
        sink.close()
        assert path.read_bytes() == b""


class TestPrometheusText:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("stream.merges").inc(4)
        registry.gauge("clusters.live", column="address").set(9)
        text = prometheus_text(registry)
        assert "# TYPE stream_merges counter" in text
        assert "stream_merges 4" in text
        assert "# TYPE clusters_live gauge" in text
        assert 'clusters_live{column="address"} 9' in text
        assert text.endswith("\n")

    def test_histograms_exposed_as_summaries(self):
        registry = MetricsRegistry()
        h = registry.histogram("batch.seconds", deterministic=False)
        h.observe(1.0)
        h.observe(1.0)
        text = prometheus_text(registry)
        assert "# TYPE batch_seconds summary" in text
        assert 'batch_seconds{quantile="0.5"}' in text
        assert "batch_seconds_sum 2.0" in text
        assert "batch_seconds_count 2" in text

    def test_type_line_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("q", column="a").inc()
        registry.counter("q", column="b").inc()
        text = prometheus_text(registry)
        assert text.count("# TYPE q counter") == 1

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("q", column='we"ird\\col\numn').inc(3)
        text = prometheus_text(registry)
        assert 'column="we\\"ird\\\\col\\numn"' in text

    def test_quoted_metric_key_labels_unwrap(self):
        # metric_key quotes structural characters; prometheus_text must
        # render the raw value, not the quoted storage form.
        registry = MetricsRegistry()
        registry.counter("q", column="a,b=c").inc()
        text = prometheus_text(registry)
        assert 'column="a,b=c"' in text


class TestSinkLifecycle:
    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"type": "meta", "command": "stream"})
        rows = list(iter_rows(path))
        assert rows == [{"type": "meta", "command": "stream"}]

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "m.jsonl")
        sink.emit({"type": "meta", "command": "stream"})
        sink.close()
        sink.close()

    def test_atexit_flush_registered_until_closed(self, tmp_path,
                                                  monkeypatch):
        registered = []
        unregistered = []
        monkeypatch.setattr(
            "repro.obs.sinks.atexit.register", registered.append
        )
        monkeypatch.setattr(
            "repro.obs.sinks.atexit.unregister", unregistered.append
        )
        sink = JsonlSink(tmp_path / "m.jsonl")
        assert registered == [sink.close]  # crash-safe flush is armed
        sink.close()
        assert unregistered == [sink.close]  # and disarmed on close
