"""Tests for ``repro top``: the tail reader and the dashboard model."""

import io
import json

from repro.obs.top import TailReader, TopModel, _REFRESH, run_top


def append(path, rows):
    with open(path, "a", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")


def batch_row(batch, records=100, seconds=0.5, questions=4, stages=None):
    return {
        "type": "batch",
        "batch": batch,
        "records": records,
        "seconds": seconds,
        "questions_asked": questions,
        "stage_seconds": stages
        or {"resolve": 0.3, "learn": 0.15, "apply": 0.05},
    }


class TestTailReader:
    def test_incremental_polls(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text("", encoding="utf-8")
        reader = TailReader(path)
        assert reader.poll() == []
        append(path, [{"a": 1}])
        assert reader.poll() == [{"a": 1}]
        assert reader.poll() == []  # nothing new
        append(path, [{"b": 2}, {"c": 3}])
        assert reader.poll() == [{"b": 2}, {"c": 3}]

    def test_partial_line_stays_buffered(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"a": 1}\n{"b": ', encoding="utf-8")
        reader = TailReader(path)
        assert reader.poll() == [{"a": 1}]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("2}\n")
        assert reader.poll() == [{"b": 2}]

    def test_truncation_resets(self, tmp_path):
        path = tmp_path / "m.jsonl"
        append(path, [{"a": 1}, {"b": 2}])
        reader = TailReader(path)
        assert len(reader.poll()) == 2
        path.write_text('{"fresh": true}\n', encoding="utf-8")
        assert reader.poll() == [{"fresh": True}]

    def test_missing_file_and_foreign_lines(self, tmp_path):
        reader = TailReader(tmp_path / "absent.jsonl")
        assert reader.poll() == []
        path = tmp_path / "m.jsonl"
        path.write_text('not json\n[1, 2]\n{"ok": 1}\n', encoding="utf-8")
        assert TailReader(path).poll() == [{"ok": 1}]


class TestTopModel:
    def feed(self):
        model = TopModel()
        model.consume(
            {"type": "meta", "command": "stream", "dataset": "Address"}
        )
        for batch in range(3):
            model.consume(batch_row(batch))
        model.consume(
            {"type": "event", "event": "drift", "batch": 2,
             "miss_rate": 0.4}
        )
        model.consume(
            {
                "type": "snapshot",
                "metrics": {
                    "shards.busy_seconds{shard=0}": 0.6,
                    "shards.busy_seconds{shard=1}": 0.3,
                    "other.metric": 7,
                },
            }
        )
        return model

    def test_totals(self):
        model = self.feed()
        assert model.batches == 3
        assert model.records == 300
        assert model.questions == 12
        assert abs(model.wall_seconds - 1.5) < 1e-9

    def test_question_rate(self):
        model = self.feed()
        per_batch, per_1k = model.question_rate()
        assert per_batch == 4.0
        assert per_1k == 40.0
        assert TopModel().question_rate() == (0.0, 0.0)

    def test_frame_renders_all_sections(self):
        frame = self.feed().frame()
        assert "repro top — stream (Address)" in frame
        assert "batches=3 records=300" in frame
        for stage in ("resolve", "learn", "apply"):
            assert stage in frame
        assert "p50" in frame and "p95" in frame and "p99" in frame
        # resolve is 0.3 of 0.5 per batch: the top share line.
        assert "60.0%" in frame
        assert "shard busy: s0=40% s1=20%" in frame
        assert "drift events: 1" in frame
        assert "miss_rate=0.4" in frame
        assert "[q quits]" in frame

    def test_empty_model_renders(self):
        frame = TopModel().frame()
        assert "repro top" in frame
        assert "batches=0" in frame


class TestRunTop:
    def test_once_renders_plain_frame(self, tmp_path):
        path = tmp_path / "m.jsonl"
        append(
            path,
            [{"type": "meta", "command": "stream"}, batch_row(0)],
        )
        out = io.StringIO()
        assert run_top(path, once=True, out=out) == 0
        text = out.getvalue()
        assert "repro top — stream" in text
        assert _REFRESH not in text  # --once output is log-safe

    def test_bounded_loop_repaints_in_place(self, tmp_path):
        path = tmp_path / "m.jsonl"
        append(path, [batch_row(0)])
        out = io.StringIO()
        assert run_top(path, interval=0.01, out=out, max_refreshes=2) == 0
        assert out.getvalue().count(_REFRESH) == 2
