"""Integration: the paper's running example end to end (Figure 1).

Table 1 (clustered records) -> standardization (Table 2) -> golden
records (Table 3), on both the Name and Address columns.
"""

import pytest

from repro.data.table import CellRef, ClusterTable, Record
from repro.fusion import majority
from repro.pipeline.consolidate import GoldenRecordCreation
from repro.pipeline.oracle import GroundTruthOracle


def table1():
    table = ClusterTable(["name", "address"])
    table.add_cluster(
        "C1",
        [
            Record("r1", {"name": "Mary Lee", "address": "9 St, 02141 Wisconsin"}),
            Record("r2", {"name": "M. Lee", "address": "9th St, 02141 WI"}),
            Record("r3", {"name": "Lee, Mary", "address": "9 Street, 02141 WI"}),
        ],
    )
    table.add_cluster(
        "C2",
        [
            Record("r4", {"name": "Smith, James", "address": "5th St, 22701 California"}),
            Record("r5", {"name": "James Smith", "address": "3rd E Ave, 33990 California"}),
            Record("r6", {"name": "J. Smith", "address": "3 E Avenue, 33990 CA"}),
        ],
    )
    return table


def ground_truth():
    """Cell-level canonical strings; C2's addresses genuinely conflict
    (r4 is a different address), exactly as in the paper."""
    canonical = {}
    for ri in range(3):
        canonical[CellRef(0, ri, "name")] = "Mary Lee"
        canonical[CellRef(1, ri, "name")] = "James Smith"
        canonical[CellRef(0, ri, "address")] = "9th Street, 02141 WI"
    canonical[CellRef(1, 0, "address")] = "5th St, 22701 California"
    canonical[CellRef(1, 1, "address")] = "3rd E Avenue, 33990 CA"
    canonical[CellRef(1, 2, "address")] = "3rd E Avenue, 33990 CA"
    return canonical


@pytest.fixture
def consolidated():
    table = table1()
    canonical = ground_truth()

    def factory(standardizer):
        return GroundTruthOracle(canonical, standardizer.store)

    pipeline = GoldenRecordCreation(
        table, factory, budget_per_column=30, fusion=majority.fuse
    )
    report = pipeline.run()
    return table, report


class TestTable2:
    def test_name_column_standardized(self, consolidated):
        table, _ = consolidated
        assert set(table.cluster_values(0, "name")) == {"Mary Lee"}
        assert set(table.cluster_values(1, "name")) == {"James Smith"}

    def test_address_variants_standardized(self, consolidated):
        table, _ = consolidated
        # Cluster 1's three address renderings are all variants of one
        # address and must collapse (Table 2 row r1-r3).
        assert len(set(table.cluster_values(0, "address"))) == 1

    def test_conflicting_addresses_not_merged(self, consolidated):
        table, _ = consolidated
        # r4's address is a *different* address (conflict): it must
        # survive standardization distinct from r5/r6's.
        values = table.cluster_values(1, "address")
        assert values[0] != values[1]

    def test_variant_addresses_in_conflict_cluster_merge(self, consolidated):
        table, _ = consolidated
        values = table.cluster_values(1, "address")
        assert values[1] == values[2]  # r5 and r6 are the same address


class TestTable3:
    def test_golden_names(self, consolidated):
        _, report = consolidated
        assert report.golden[0].values["name"] == "Mary Lee"
        assert report.golden[1].values["name"] == "James Smith"

    def test_golden_addresses(self, consolidated):
        _, report = consolidated
        # C1: all three agree after standardization.
        assert report.golden[0].values["address"] is not None
        # C2: majority = the address shared by r5/r6 (Table 3 row C2).
        golden_c2 = report.golden[1].values["address"]
        assert golden_c2 is not None
        assert "33990" in golden_c2
