"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.dataset == "Address"
        assert args.scale == 0.15

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--dataset", "Nope"])

    def test_seed_defaults_to_unset(self):
        args = build_parser().parse_args(["stats"])
        assert args.seed is None

    def test_learn_defaults(self):
        args = build_parser().parse_args(["learn"])
        assert args.budget == 100
        assert args.out is None and args.registry is None

    def test_apply_accepts_model_sources(self):
        args = build_parser().parse_args(["apply", "--model", "m.json"])
        assert args.model == "m.json"
        args = build_parser().parse_args(
            ["apply", "--registry", "r", "--name", "n", "--model-version", "2"]
        )
        assert (args.registry, args.name, args.model_version) == ("r", "n", 2)

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--model", "m.json"])
        assert args.cache_size == 65536
        assert not args.no_programs


class TestCommands:
    def test_stats_runs(self, capsys):
        assert main(["stats", "--dataset", "JournalTitle", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "distinct value pairs" in out

    def test_groups_runs(self, capsys):
        assert (
            main(
                [
                    "groups",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--top",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Group 1" in out

    def test_standardize_runs(self, capsys):
        assert (
            main(
                [
                    "standardize",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--budget",
                    "5",
                    "--sample-size",
                    "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "final" in out and "precision=" in out

    def test_consolidate_runs(self, capsys):
        assert (
            main(
                [
                    "consolidate",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--budget",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "before standardization" in out

    def test_seed_flag(self, capsys):
        assert (
            main(
                [
                    "stats",
                    "--dataset",
                    "Address",
                    "--scale",
                    "0.03",
                    "--seed",
                    "5",
                ]
            )
            == 0
        )
