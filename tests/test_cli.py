"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.dataset == "Address"
        assert args.scale == 0.15

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--dataset", "Nope"])

    def test_seed_defaults_to_unset(self):
        args = build_parser().parse_args(["stats"])
        assert args.seed is None

    def test_learn_defaults(self):
        args = build_parser().parse_args(["learn"])
        assert args.budget == 100
        assert args.out is None and args.registry is None

    def test_apply_accepts_model_sources(self):
        args = build_parser().parse_args(["apply", "--model", "m.json"])
        assert args.model == "m.json"
        args = build_parser().parse_args(
            ["apply", "--registry", "r", "--name", "n", "--model-version", "2"]
        )
        assert (args.registry, args.name, args.model_version) == ("r", "n", 2)

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--model", "m.json"])
        assert args.cache_size == 65536
        assert not args.no_programs


class TestCommands:
    def test_stats_runs(self, capsys):
        assert main(["stats", "--dataset", "JournalTitle", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "distinct value pairs" in out

    def test_groups_runs(self, capsys):
        assert (
            main(
                [
                    "groups",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--top",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Group 1" in out

    def test_standardize_runs(self, capsys):
        assert (
            main(
                [
                    "standardize",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--budget",
                    "5",
                    "--sample-size",
                    "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "final" in out and "precision=" in out

    def test_consolidate_runs(self, capsys):
        assert (
            main(
                [
                    "consolidate",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--budget",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "before standardization" in out

    def test_seed_flag(self, capsys):
        assert (
            main(
                [
                    "stats",
                    "--dataset",
                    "Address",
                    "--scale",
                    "0.03",
                    "--seed",
                    "5",
                ]
            )
            == 0
        )


class TestStreamParser:
    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.batches == 5
        assert args.budget == 50
        assert args.registry is None
        assert not args.no_engine
        assert args.drift_threshold is None

    def test_stream_flags(self):
        args = build_parser().parse_args(
            [
                "stream",
                "--batches",
                "3",
                "--budget",
                "20",
                "--registry",
                "reg",
                "--name",
                "addr",
                "--no-engine",
                "--drift-threshold",
                "0.4",
            ]
        )
        assert (args.batches, args.budget) == (3, 20)
        assert (args.registry, args.name) == ("reg", "addr")
        assert args.no_engine and args.drift_threshold == 0.4

    def test_apply_stats_flag(self):
        args = build_parser().parse_args(
            ["apply", "--model", "m.json", "--stats"]
        )
        assert args.stats

    def test_metrics_flags(self):
        args = build_parser().parse_args(
            ["stream", "--metrics", "m.jsonl", "--trace"]
        )
        assert args.metrics == "m.jsonl"
        assert args.trace
        args = build_parser().parse_args(["stream"])
        assert args.metrics is None and not args.trace

    def test_stats_metrics_flags(self):
        args = build_parser().parse_args(
            ["stats", "--metrics", "m.jsonl", "--check"]
        )
        assert args.metrics == "m.jsonl"
        assert args.check

    def test_question_order_flag(self):
        args = build_parser().parse_args(["stream"])
        assert args.question_order == "discovery"
        args = build_parser().parse_args(
            ["stream", "--question-order", "yield"]
        )
        assert args.question_order == "yield"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stream", "--question-order", "random"]
            )


class TestStreamCommand:
    def test_stream_runs_and_publishes(self, capsys, tmp_path):
        registry = tmp_path / "registry"
        assert (
            main(
                [
                    "stream",
                    "--dataset",
                    "Address",
                    "--scale",
                    "0.04",
                    "--seed",
                    "4",
                    "--batches",
                    "3",
                    "--budget",
                    "30",
                    "--registry",
                    str(registry),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "batch 0" in out and "batch 2" in out
        assert "saved by reuse" in out
        # Versions were actually published.
        assert sorted((registry / "address").glob("v*.json"))

    def test_stream_no_engine_runs(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--seed",
                    "2",
                    "--batches",
                    "2",
                    "--budget",
                    "10",
                    "--no-engine",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stream done" in out

    def test_apply_stats_prints_counters(self, capsys, tmp_path):
        model_path = tmp_path / "m.json"
        csv_path = tmp_path / "in.csv"
        assert (
            main(
                [
                    "learn",
                    "--dataset",
                    "Address",
                    "--scale",
                    "0.04",
                    "--seed",
                    "9",
                    "--budget",
                    "15",
                    "--out",
                    str(model_path),
                ]
            )
            == 0
        )
        csv_path.write_text(
            "address\n5 Main St, 10001 NY\n", encoding="utf-8"
        )
        assert (
            main(
                [
                    "apply",
                    "--model",
                    str(model_path),
                    "--input",
                    str(csv_path),
                    "--stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stats: {" in out and '"exact_hits"' in out


class TestMetricsWorkflow:
    """``stream --metrics`` recording and ``stats --metrics`` replay."""

    def stream_args(self, metrics_path):
        return [
            "stream",
            "--dataset",
            "Address",
            "--scale",
            "0.04",
            "--seed",
            "4",
            "--batches",
            "3",
            "--budget",
            "30",
            "--metrics",
            str(metrics_path),
        ]

    def test_stream_records_and_stats_summarizes(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "run.jsonl"
        assert main(self.stream_args(metrics) + ["--trace"]) == 0
        assert "metrics recorded" in capsys.readouterr().out
        rows = [
            json.loads(line)
            for line in metrics.read_text(encoding="utf-8").splitlines()
        ]
        kinds = [row["type"] for row in rows]
        assert kinds[0] == "meta"
        assert kinds[-1] == "snapshot"
        assert kinds.count("batch") == 3
        assert "span" in kinds
        # Validate + summarize through the CLI.
        assert main(["stats", "--metrics", str(metrics), "--check"]) == 0
        out = capsys.readouterr().out
        assert "schema OK" in out
        assert "per-stage runtime (Fig. 9 view):" in out
        assert "oracle questions per column:" in out

    def test_golden_stream_records_metrics(self, capsys, tmp_path):
        metrics = tmp_path / "golden.jsonl"
        assert (
            main(
                [
                    "stream",
                    "--columns",
                    "address,title",
                    "--scale",
                    "0.05",
                    "--seed",
                    "6",
                    "--batches",
                    "2",
                    "--budget",
                    "30",
                    "--metrics",
                    str(metrics),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["stats", "--metrics", str(metrics), "--check"]) == 0
        out = capsys.readouterr().out
        assert "schema OK" in out
        assert "address" in out and "title" in out

    def test_trace_requires_metrics(self):
        with pytest.raises(SystemExit, match="--trace requires"):
            main(["stream", "--trace", "--seed", "1"])
        with pytest.raises(SystemExit, match="--trace requires"):
            main(
                [
                    "stream",
                    "--columns",
                    "address",
                    "--trace",
                    "--seed",
                    "1",
                ]
            )

    def test_stats_check_requires_metrics(self):
        with pytest.raises(SystemExit, match="--check requires"):
            main(["stats", "--check"])

    def test_stats_missing_metrics_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no such metrics file"):
            main(["stats", "--metrics", str(tmp_path / "nope.jsonl")])

    def test_stats_check_fails_on_schema_violation(self, capsys, tmp_path):
        metrics = tmp_path / "bad.jsonl"
        metrics.write_text(
            '{"type": "meta", "command": "stream"}\n{"type": "bogus"}\n',
            encoding="utf-8",
        )
        assert main(["stats", "--metrics", str(metrics), "--check"]) == 1
        err = capsys.readouterr().err
        assert "schema violation" in err


class TestGoldenStreamCommand:
    """``repro stream --columns``: the multi-column golden-record mode."""

    def test_golden_flags_parse(self):
        args = build_parser().parse_args(
            [
                "stream",
                "--columns",
                "address,title",
                "--golden-out",
                "g.jsonl",
                "--fusion",
                "truthfinder",
            ]
        )
        assert args.columns == "address,title"
        assert args.golden_out == "g.jsonl"
        assert args.fusion == "truthfinder"

    def test_golden_stream_runs_and_writes_records(
        self, capsys, tmp_path
    ):
        import json

        registry = tmp_path / "registry"
        out = tmp_path / "golden.jsonl"
        assert (
            main(
                [
                    "stream",
                    "--columns",
                    "address,title",
                    "--scale",
                    "0.05",
                    "--seed",
                    "6",
                    "--batches",
                    "3",
                    "--budget",
                    "30",
                    "--registry",
                    str(registry),
                    "--golden-out",
                    str(out),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "2 columns: address, title" in printed
        assert "golden records" in printed
        # One atomic bundle version per confirming batch.
        assert sorted((registry / "address-title").glob("v*.json"))
        # Per-column decision logs next to the bundle.
        assert (registry / "address-title" / "decisions-address.jsonl").exists()
        assert (registry / "address-title" / "decisions-title.jsonl").exists()
        rows = [
            json.loads(line)
            for line in out.read_text().splitlines()
        ]
        assert rows
        for row in rows:
            assert {"cluster", "key", "address", "title"} <= set(row)

    def test_golden_stream_rejects_unknown_columns(self):
        with pytest.raises(SystemExit, match="unknown golden columns"):
            main(
                [
                    "stream",
                    "--columns",
                    "address,bogus",
                    "--seed",
                    "1",
                ]
            )

    def test_golden_stream_rejects_drift_monitoring(self):
        with pytest.raises(SystemExit, match="drift-threshold"):
            main(
                [
                    "stream",
                    "--columns",
                    "address",
                    "--drift-threshold",
                    "0.5",
                    "--seed",
                    "1",
                ]
            )

    def test_empty_columns_list_rejected(self):
        with pytest.raises(SystemExit, match="at least one column"):
            main(["stream", "--columns", ",", "--seed", "1"])

    def test_golden_only_flags_rejected_without_columns(self):
        with pytest.raises(SystemExit, match="--golden-out requires"):
            main(
                [
                    "stream",
                    "--golden-out",
                    "g.jsonl",
                    "--seed",
                    "1",
                ]
            )
        with pytest.raises(SystemExit, match="--fusion requires"):
            main(["stream", "--fusion", "accu", "--seed", "1"])


class TestObservabilityCommands:
    """The PR-7 surfaces: --trace-tree, --profile, top, and bench."""

    def traced_run(self, tmp_path):
        metrics = tmp_path / "run.jsonl"
        args = [
            "stream", "--dataset", "Address", "--scale", "0.04",
            "--seed", "4", "--batches", "2", "--budget", "30",
            "--metrics", str(metrics), "--trace",
        ]
        assert main(args) == 0
        return metrics

    def test_stats_trace_tree_renders(self, capsys, tmp_path):
        metrics = self.traced_run(tmp_path)
        capsys.readouterr()
        assert main(["stats", "--metrics", str(metrics),
                     "--trace-tree"]) == 0
        out = capsys.readouterr().out
        assert "trace tree" in out
        assert "stream.batch" in out
        assert "stream.resolve" in out

    def test_stats_trace_tree_requires_metrics(self):
        with pytest.raises(SystemExit, match="--trace-tree requires"):
            main(["stats", "--trace-tree"])

    def test_stream_profile_writes_collapsed_stacks(self, capsys,
                                                    tmp_path):
        import json

        profile = tmp_path / "profile.jsonl"
        args = [
            "stream", "--dataset", "Address", "--scale", "0.04",
            "--seed", "4", "--batches", "2", "--budget", "30",
            "--profile", str(profile),
        ]
        assert main(args) == 0
        assert "profile written" in capsys.readouterr().out
        rows = [
            json.loads(line)
            for line in profile.read_text(encoding="utf-8").splitlines()
        ]
        assert rows[0]["type"] == "meta"
        assert rows[0]["command"] == "profile"
        assert all(row["type"] == "profile" for row in rows[1:])

    def test_top_once_renders_dashboard(self, capsys, tmp_path):
        metrics = self.traced_run(tmp_path)
        capsys.readouterr()
        assert main(["top", "--metrics", str(metrics), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top — stream" in out
        assert "batches=2" in out

    def test_top_once_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no such metrics file"):
            main(["top", "--metrics", str(tmp_path / "nope.jsonl"),
                  "--once"])

    def bench_history(self, tmp_path, extra=None):
        import json

        results = tmp_path / "results"
        results.mkdir()
        rows = [
            {"bench": "kernels", "test": "test_match",
             "outcome": "passed", "seconds": 1.0 + 0.02 * run}
            for run in range(3)
        ]
        rows += extra or []
        with open(results / "BENCH_kernels.json", "w",
                  encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        return results

    def test_bench_baseline_then_check_passes(self, capsys, tmp_path):
        results = self.bench_history(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["bench", "baseline", "--results-dir", str(results),
                     "--write", str(baseline)]) == 0
        assert "baseline written" in capsys.readouterr().out
        assert main(["bench", "check", "--results-dir", str(results),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_bench_check_fails_on_injected_regression(self, capsys,
                                                      tmp_path):
        results = self.bench_history(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["bench", "baseline", "--results-dir", str(results),
                     "--write", str(baseline)]) == 0
        capsys.readouterr()
        slow = {"bench": "kernels", "test": "test_match",
                "outcome": "passed", "seconds": 2.1}
        import json

        with open(results / "BENCH_kernels.json", "a",
                  encoding="utf-8") as handle:
            handle.write(json.dumps(slow) + "\n")
        assert main(["bench", "check", "--results-dir", str(results),
                     "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_bench_check_missing_baseline_errors(self, tmp_path):
        results = self.bench_history(tmp_path)
        with pytest.raises(SystemExit, match="no baseline file"):
            main(["bench", "check", "--results-dir", str(results),
                  "--baseline", str(tmp_path / "nope.json")])

    def test_bench_baseline_empty_results_fails(self, capsys, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        assert main(["bench", "baseline", "--results-dir",
                     str(empty)]) == 1
        assert "no usable series" in capsys.readouterr().out


class TestDecisionsCommand:
    """``repro decisions``: offline verdict-log maintenance."""

    @staticmethod
    def write_log(path, rows):
        with open(path, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        return path

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decisions"])

    def test_missing_log_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no such log"):
            main(["decisions", "audit", str(tmp_path / "nope.jsonl")])

    def test_audit_healthy_log(self, capsys, tmp_path):
        log = self.write_log(
            tmp_path / "decisions.jsonl",
            [
                {"lhs": "a", "rhs": "b", "approved": True},
                {
                    "lhs": "a",
                    "rhs": "c",
                    "approved": True,
                    "source": "inferred",
                },
                {"lhs": "x", "rhs": "y", "approved": False},
            ],
        )
        assert main(["decisions", "audit", str(log)]) == 0
        out = capsys.readouterr().out
        assert "effective: 3" in out
        assert "2 approved" in out and "1 rejected" in out
        assert "inferred x1" in out

    def test_audit_json_and_conflict_exit_code(self, capsys, tmp_path):
        log = self.write_log(
            tmp_path / "decisions.jsonl",
            [
                {"lhs": "a", "rhs": "b", "approved": True},
                {"lhs": "a", "rhs": "b", "approved": False},
            ],
        )
        assert main(["decisions", "audit", "--json", str(log)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["conflicts"] == 1
        assert report["effective"] == 1

    def test_compact_dry_run_leaves_log_alone(self, capsys, tmp_path):
        log = self.write_log(
            tmp_path / "decisions.jsonl",
            [
                {"lhs": "a", "rhs": "b", "approved": True},
                {"lhs": "b", "rhs": "a", "approved": True},
            ],
        )
        before = log.read_text()
        assert main(["decisions", "compact", str(log)]) == 0
        out = capsys.readouterr().out
        assert "1 droppable" in out
        assert log.read_text() == before

    def test_compact_write_rewrites_with_backup(self, capsys, tmp_path):
        log = self.write_log(
            tmp_path / "decisions.jsonl",
            [
                {"lhs": "a", "rhs": "b", "approved": True},
                {"lhs": "b", "rhs": "a", "approved": True},
                {"lhs": "x", "rhs": "y", "approved": False},
            ],
        )
        assert main(["decisions", "compact", "--write", str(log)]) == 0
        out = capsys.readouterr().out
        assert "rewrote" in out
        backup = tmp_path / "decisions.jsonl.pre-compact"
        assert backup.exists()
        assert len(backup.read_text().splitlines()) == 3
        kept = [json.loads(line) for line in log.read_text().splitlines()]
        assert len(kept) == 2
        # The compacted log is itself a healthy decision log.
        capsys.readouterr()
        assert main(["decisions", "audit", str(log)]) == 0

    def test_diff_exit_codes(self, capsys, tmp_path):
        rows = [{"lhs": "a", "rhs": "b", "approved": True}]
        log_a = self.write_log(tmp_path / "a.jsonl", rows)
        log_b = self.write_log(tmp_path / "b.jsonl", rows)
        assert main(["decisions", "diff", str(log_a), str(log_b)]) == 0
        capsys.readouterr()
        self.write_log(
            tmp_path / "b.jsonl",
            rows + [{"lhs": "x", "rhs": "y", "approved": False}],
        )
        assert main(["decisions", "diff", str(log_a), str(log_b)]) == 1
        out = capsys.readouterr().out
        assert "1 only in b" in out

    def test_diff_flags_conflicting_verdicts(self, capsys, tmp_path):
        log_a = self.write_log(
            tmp_path / "a.jsonl",
            [{"lhs": "a", "rhs": "b", "approved": True}],
        )
        # Same pair judged in the mirrored orientation with the
        # opposite verdict: a conflict, not two separate entries.
        log_b = self.write_log(
            tmp_path / "b.jsonl",
            [{"lhs": "b", "rhs": "a", "approved": False}],
        )
        assert main(["decisions", "diff", str(log_a), str(log_b)]) == 1
        assert "1 conflicting" in capsys.readouterr().out
