"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.dataset == "Address"
        assert args.scale == 0.15

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--dataset", "Nope"])


class TestCommands:
    def test_stats_runs(self, capsys):
        assert main(["stats", "--dataset", "JournalTitle", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "distinct value pairs" in out

    def test_groups_runs(self, capsys):
        assert (
            main(
                [
                    "groups",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--top",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Group 1" in out

    def test_standardize_runs(self, capsys):
        assert (
            main(
                [
                    "standardize",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--budget",
                    "5",
                    "--sample-size",
                    "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "final" in out and "precision=" in out

    def test_consolidate_runs(self, capsys):
        assert (
            main(
                [
                    "consolidate",
                    "--dataset",
                    "JournalTitle",
                    "--scale",
                    "0.03",
                    "--budget",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "before standardization" in out

    def test_seed_flag(self, capsys):
        assert (
            main(
                [
                    "stats",
                    "--dataset",
                    "Address",
                    "--scale",
                    "0.03",
                    "--seed",
                    "5",
                ]
            )
            == 0
        )
