"""Tests for candidate generation and Section 7.1 maintenance."""

import pytest

from repro.candidates.generate import generate_candidates
from repro.candidates.store import _replace_token_segment
from repro.config import Config
from repro.core.replacement import Replacement
from repro.data.table import CellRef, ClusterTable, Record


def make_table(*clusters, column="name"):
    table = ClusterTable([column])
    for ci, values in enumerate(clusters):
        table.add_cluster(
            f"c{ci}",
            [Record(f"r{ci}_{ri}", {column: v}) for ri, v in enumerate(values)],
        )
    return table


@pytest.fixture
def paper_table():
    """Table 1's Name column."""
    return make_table(
        ["Mary Lee", "M. Lee", "Lee, Mary"],
        ["Smith, James", "James Smith", "J. Smith"],
    )


class TestGeneration:
    def test_both_directions_generated(self, paper_table):
        store = generate_candidates(paper_table, "name")
        assert Replacement("Mary Lee", "M. Lee") in store
        assert Replacement("M. Lee", "Mary Lee") in store

    def test_twelve_full_value_candidates(self, paper_table):
        """Section 3: Table 1's Name column yields 12 candidates."""
        store = generate_candidates(
            paper_table, "name", Config(token_level_candidates=False)
        )
        assert len(store.replacements()) == 12

    def test_no_candidates_across_clusters(self, paper_table):
        store = generate_candidates(paper_table, "name")
        assert Replacement("Mary Lee", "James Smith") not in store

    def test_identical_values_skipped(self):
        table = make_table(["same", "same", "other"])
        store = generate_candidates(table, "name")
        assert Replacement("same", "other") in store
        assert len(store.cell_pairs(Replacement("same", "other"))) == 2

    def test_token_level_appendix_a_example(self):
        """Appendix A: '9 St, 02141 Wisconsin' vs '9th St, 02141 WI'
        produces the four fine-grained candidates."""
        table = make_table(["9 St, 02141 Wisconsin", "9th St, 02141 WI"],
                           column="address")
        store = generate_candidates(table, "address")
        for lhs, rhs in [
            ("9", "9th"), ("9th", "9"), ("Wisconsin", "WI"), ("WI", "Wisconsin"),
        ]:
            assert Replacement(lhs, rhs) in store

    def test_token_cells_point_at_lhs_cell(self):
        table = make_table(["9 St", "9th St"], column="address")
        store = generate_candidates(table, "address")
        cells = store.token_cells(Replacement("9", "9th"))
        assert cells == {CellRef(0, 0, "address")}

    def test_support_counts_everything(self, paper_table):
        store = generate_candidates(paper_table, "name")
        assert store.support(Replacement("Mary Lee", "M. Lee")) >= 1

    def test_empty_cluster_values_ignored(self):
        table = make_table(["", "x"], column="name")
        store = generate_candidates(table, "name")
        assert len(store.replacements()) == 0


class TestApplication:
    def test_full_value_apply(self, paper_table):
        store = generate_candidates(paper_table, "name")
        changed = store.apply_replacement(Replacement("Lee, Mary", "Mary Lee"))
        assert changed == [CellRef(0, 2, "name")]
        assert paper_table.value(CellRef(0, 2, "name")) == "Mary Lee"

    def test_apply_only_at_generated_places(self):
        """Footnote 1: not every 'St' is 'Street' — replacements apply
        only where they were generated."""
        table = make_table(["9 St", "9 Street"], ["5 St", "5 Saint"],
                           column="address")
        store = generate_candidates(table, "address")
        store.apply_replacement(Replacement("St", "Street"))
        # Cluster 0's 'St' changed; cluster 1's 'St' -> 'Street' was
        # generated from the pair with 'Saint'?  No: 'St'->'Saint' and
        # 'St'->'Street' are different replacements; only the first
        # cluster generated 'St'->'Street'.
        assert table.value(CellRef(0, 0, "address")) == "9 Street"
        assert table.value(CellRef(1, 0, "address")) == "5 St"

    def test_token_level_apply(self):
        table = make_table(
            ["9 St, 02141 Wisconsin", "9th St, 02141 WI"], column="address"
        )
        store = generate_candidates(table, "address")
        store.apply_replacement(Replacement("Wisconsin", "WI"))
        assert table.value(CellRef(0, 0, "address")) == "9 St, 02141 WI"

    def test_apply_is_idempotent_when_value_changed(self, paper_table):
        store = generate_candidates(paper_table, "name")
        r = Replacement("Lee, Mary", "Mary Lee")
        store.apply_replacement(r)
        assert store.apply_replacement(r) == []


class TestSection71Maintenance:
    def test_paper_walkthrough(self, paper_table):
        """Section 7.1's worked example: after v1 -> v2 is applied,
        v1 -> v3 becomes v2 -> v3 and v2 -> v1 disappears."""
        store = generate_candidates(
            paper_table, "name", Config(token_level_candidates=False)
        )
        v1, v2, v3 = "Mary Lee", "M. Lee", "Lee, Mary"
        store.apply_replacement(Replacement(v1, v2))
        # v1 is gone from the cluster:
        assert Replacement(v2, v1) not in store
        assert Replacement(v1, v3) not in store
        # the places that generated v1 -> v3 now support v2 -> v3:
        assert CellRef(0, 0, "name") in {
            pair[0] for pair in store.cell_pairs(Replacement(v2, v3))
        }

    def test_dead_replacements_drained(self, paper_table):
        store = generate_candidates(
            paper_table, "name", Config(token_level_candidates=False)
        )
        store.apply_replacement(Replacement("Mary Lee", "M. Lee"))
        dead = store.drain_dead()
        assert Replacement("M. Lee", "Mary Lee") in dead
        assert store.drain_dead() == set()  # drained once

    def test_no_new_replacement_keys_appear(self, paper_table):
        """Section 7.1: updates only add entries under existing keys."""
        store = generate_candidates(paper_table, "name")
        before = set(store.replacements())
        store.apply_replacement(Replacement("Lee, Mary", "Mary Lee"))
        after = set(store.replacements())
        assert after <= before

    def test_values_converge_under_repeated_application(self, paper_table):
        store = generate_candidates(paper_table, "name")
        for replacement in [
            Replacement("Lee, Mary", "Mary Lee"),
            Replacement("M. Lee", "Mary Lee"),
        ]:
            store.apply_replacement(replacement)
        assert set(paper_table.cluster_values(0, "name")) == {"Mary Lee"}
        # All intra-cluster candidates of cluster 0 are gone.
        for r in store.replacements():
            pairs = store.cell_pairs(r)
            assert all(p[0].cluster != 0 for p in pairs) or not pairs


class TestTokenSegmentReplace:
    def test_replaces_whole_token_runs_only(self):
        assert _replace_token_segment("9th Stone", "St", "Street") is None

    def test_replaces_first_occurrence(self):
        assert _replace_token_segment("a b a", "a", "c") == "c b a"

    def test_multi_token_segment(self):
        assert (
            _replace_token_segment("kip irvine, tony gaddis", "tony gaddis", "t. g.")
            == "kip irvine, t. g."
        )

    def test_absent_segment(self):
        assert _replace_token_segment("a b", "z", "y") is None

    def test_longer_segment_than_value(self):
        assert _replace_token_segment("a", "a b c", "x") is None
