"""Tests for the Appendix E accelerations wired through grouping:
replacement sampling and mined constant-string MatchPos terms."""

from collections import Counter
from dataclasses import replace as dc_replace

import pytest

from repro.config import Config
from repro.core.grouping import (
    build_group_vocabulary,
    constant_whitelist,
    unsupervised_grouping,
)
from repro.core.incremental import IncrementalGrouper
from repro.core.replacement import Replacement
from repro.core.scoring import global_frequencies


@pytest.fixture
def ordinal_pool():
    return [Replacement(f"{n}th", str(n)) for n in (4, 5, 6, 7, 8, 9, 11, 12)]


class TestSampling:
    def test_sampled_grouping_is_still_a_partition(self, ordinal_pool):
        config = Config(sample_size=3)
        outcome = unsupervised_grouping(ordinal_pool, config=config)
        scattered = sorted(r for g in outcome.groups for r in g.replacements)
        assert scattered == sorted(ordinal_pool)

    def test_sampled_programs_stay_consistent(self, ordinal_pool):
        config = Config(sample_size=3)
        for group in unsupervised_grouping(ordinal_pool, config=config).groups:
            for member in group.replacements:
                assert group.program.produces(member.lhs, member.rhs)

    def test_sampling_deterministic_under_seed(self, ordinal_pool):
        config = Config(sample_size=3, seed=5)
        a = unsupervised_grouping(ordinal_pool, config=config)
        b = unsupervised_grouping(ordinal_pool, config=config)
        assert [g.replacements for g in a.sorted_groups()] == [
            g.replacements for g in b.sorted_groups()
        ]


class TestConstantWhitelist:
    def test_recurring_tokens_admitted(self):
        replacements = [
            Replacement("9", "9th"),
            Replacement("5", "5th"),
            Replacement("8", "8th"),
        ]
        whitelist = constant_whitelist(replacements, Config())
        assert "th" in whitelist

    def test_rare_tokens_excluded(self):
        replacements = [
            Replacement("a", "a unique"),
            Replacement("b", "b alone"),
            Replacement("c", "c solo"),
        ]
        whitelist = constant_whitelist(replacements, Config())
        assert "unique" not in whitelist

    def test_disabled_returns_none(self):
        assert constant_whitelist([], Config(scored_constants=False)) is None


class TestMinedVocabulary:
    def test_mined_terms_attached(self):
        from repro.core.terms import DEFAULT_VOCABULARY

        replacements = [
            Replacement("Mr. Lee", "Lee"),
            Replacement("Mr. Ray", "Ray"),
            Replacement("Mr. Kim", "Kim"),
        ]
        # Realistic global counts: names are frequent across the whole
        # column, the honorific is group-local -> "Mr" scores best.
        counts = Counter({"Mr": 9, "Lee": 400, "Ray": 380, "Kim": 390, ".": 2000})
        config = Config(constant_match_terms=1)
        vocab = build_group_vocabulary(
            replacements, DEFAULT_VOCABULARY, config, counts
        )
        assert any(t.literal == "Mr" for t in vocab.constant_terms)

    def test_extra_constant_terms_config(self):
        from repro.core.terms import DEFAULT_VOCABULARY

        config = Config(extra_constant_terms=("Dr.",))
        vocab = build_group_vocabulary([], DEFAULT_VOCABULARY, config, None)
        assert any(t.literal == "Dr." for t in vocab.constant_terms)

    def test_mining_changes_grouping_capability(self):
        """With a mined 'Mister' term the honorific-anchored extraction
        groups; the families differ only in the trailing name, so the
        shared program needs the constant term as an anchor."""
        replacements = [
            Replacement("Mister Lee Jr", "Jr"),
            Replacement("Mister Ray Sr", "Sr"),
        ]
        base = unsupervised_grouping(replacements, config=Config())
        # Both sides: suffix extraction after the last whitespace works
        # even without mining, so simply assert both configs agree and
        # produce consistent programs.
        counts = Counter({"Mister": 2, "Lee": 1, "Ray": 1})
        mined = unsupervised_grouping(
            replacements, config=Config(constant_match_terms=1),
            global_counts=counts,
        )
        for outcome in (base, mined):
            for group in outcome.groups:
                for member in group.replacements:
                    assert group.program.produces(member.lhs, member.rhs)


class TestIncrementalWithAccelerations:
    def test_incremental_with_sampling(self, ordinal_pool):
        config = Config(sample_size=3)
        groups = list(IncrementalGrouper(ordinal_pool, config=config).groups())
        scattered = sorted(r for g in groups for r in g.replacements)
        assert scattered == sorted(ordinal_pool)

    def test_incremental_with_mined_constants(self, ordinal_pool):
        counts = global_frequencies([r.rhs for r in ordinal_pool])
        config = Config(constant_match_terms=2)
        groups = list(
            IncrementalGrouper(
                ordinal_pool, config=config, global_counts=counts
            ).groups()
        )
        assert groups
