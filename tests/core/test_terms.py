"""Tests for the DSL terms and match caching."""

import pytest

from repro.core.terms import (
    CAPITALS,
    ConstTerm,
    DIGITS,
    LOWERCASE,
    MatchContext,
    PUNCTUATION,
    RegexTerm,
    TermVocabulary,
    WHITESPACE,
)


class TestRegexTerm:
    def test_capitals_matches_maximal_runs(self):
        assert CAPITALS.matches("Lee, Mary") == [(1, 2), (6, 7)]

    def test_capitals_run_collapses(self):
        # "ABc" has one maximal capitals run "AB".
        assert CAPITALS.matches("ABc") == [(1, 3)]

    def test_lowercase_matches(self):
        assert LOWERCASE.matches("Lee, Mary") == [(2, 4), (7, 10)]

    def test_digits_matches(self):
        assert DIGITS.matches("9 St, 02141 WI") == [(1, 2), (7, 12)]

    def test_whitespace_matches(self):
        assert WHITESPACE.matches("a b  c") == [(2, 3), (4, 6)]

    def test_punctuation_matches(self):
        assert PUNCTUATION.matches("Lee, Mary") == [(4, 5)]

    def test_no_matches(self):
        assert DIGITS.matches("abc") == []

    def test_empty_string(self):
        assert CAPITALS.matches("") == []

    def test_positions_are_one_based_half_open(self):
        # "M" occupies 1-based span [1, 2).
        assert CAPITALS.matches("Mary") == [(1, 2)]

    def test_repr(self):
        assert repr(CAPITALS) == "TC"


class TestConstTerm:
    def test_finds_all_occurrences(self):
        assert ConstTerm("ab").matches("abab") == [(1, 3), (3, 5)]

    def test_occurrences_do_not_overlap(self):
        assert ConstTerm("aa").matches("aaa") == [(1, 3)]

    def test_absent(self):
        assert ConstTerm("xyz").matches("abc") == []

    def test_empty_literal_matches_nothing(self):
        assert ConstTerm("").matches("abc") == []

    def test_repr_contains_literal(self):
        assert "ab" in repr(ConstTerm("ab"))


class TestTermVocabulary:
    def test_default_has_four_regex_terms(self):
        vocab = TermVocabulary()
        assert len(vocab.regex_terms) == 4
        assert not vocab.constant_terms

    def test_with_constant_terms(self):
        vocab = TermVocabulary().with_constant_terms(["Mr.", "Dr."])
        assert {t.literal for t in vocab.constant_terms} == {"Mr.", "Dr."}

    def test_with_constant_terms_dedupes(self):
        vocab = TermVocabulary().with_constant_terms(["Mr."])
        vocab = vocab.with_constant_terms(["Mr.", "Dr."])
        assert len(vocab.constant_terms) == 2

    def test_with_constant_terms_skips_empty(self):
        vocab = TermVocabulary().with_constant_terms(["", "x"])
        assert len(vocab.constant_terms) == 1

    def test_all_terms_concatenates(self):
        vocab = TermVocabulary().with_constant_terms(["q"])
        assert len(vocab.all_terms) == 5


class TestMatchContext:
    def test_caches_matches(self):
        ctx = MatchContext("Lee, Mary")
        first = ctx.matches(CAPITALS)
        assert ctx.matches(CAPITALS) is first

    def test_len_is_string_length(self):
        assert len(MatchContext("abcd")) == 4

    def test_vocabulary_attached(self):
        vocab = TermVocabulary()
        assert MatchContext("x", vocab).vocabulary is vocab
