"""Tests for the plain-language program explanations."""

import pytest

from repro.core.explain import (
    describe_function,
    describe_position,
    describe_term,
    explain_program,
)
from repro.core.functions import ConstantStr, Prefix, SubStr, Suffix
from repro.core.positions import BEGIN, END, ConstPos, MatchPos
from repro.core.program import make_program
from repro.core.terms import CAPITALS, ConstTerm, LOWERCASE, WHITESPACE


class TestDescribeTerm:
    def test_regex_terms(self):
        assert describe_term(CAPITALS) == "capital-letter run"
        assert describe_term(LOWERCASE) == "lowercase-letter run"

    def test_const_term(self):
        assert describe_term(ConstTerm("Mr.")) == "literal 'Mr.'"


class TestDescribePosition:
    def test_string_ends(self):
        assert describe_position(ConstPos(1)) == "the start of the string"
        assert describe_position(ConstPos(-1)) == "the end of the string"

    def test_absolute_positions(self):
        assert describe_position(ConstPos(3)) == "position 3"
        assert describe_position(ConstPos(-4)) == "position 3 from the end"

    def test_match_positions(self):
        assert (
            describe_position(MatchPos(CAPITALS, 1, BEGIN))
            == "the start of the 1st capital-letter run"
        )
        assert (
            describe_position(MatchPos(CAPITALS, -1, END))
            == "the end of the last capital-letter run"
        )
        assert "2nd" in describe_position(MatchPos(LOWERCASE, 2, BEGIN))


class TestDescribeFunction:
    def test_constant(self):
        assert describe_function(ConstantStr(". ")) == "append '. '"

    def test_substr(self):
        text = describe_function(
            SubStr(ConstPos(1), MatchPos(LOWERCASE, 1, END))
        )
        assert text.startswith("take the text from the start of the string")
        assert "lowercase-letter run" in text

    def test_affixes(self):
        assert "leading part" in describe_function(Prefix(LOWERCASE, 1))
        assert "trailing part" in describe_function(Suffix(LOWERCASE, -1))


class TestExplainProgram:
    def test_paper_program(self):
        # Figure 3's f2 ⊕ f3 ⊕ f1.
        program = make_program(
            [
                SubStr(MatchPos(WHITESPACE, 1, END), MatchPos(CAPITALS, -1, END)),
                ConstantStr(". "),
                SubStr(MatchPos(CAPITALS, 1, BEGIN), MatchPos(LOWERCASE, 1, END)),
            ]
        )
        text = explain_program(program)
        assert text.count("then") == 2
        assert "append '. '" in text

    def test_empty_program(self):
        assert explain_program(make_program([])) == "produce the empty string"

    def test_every_group_program_is_explainable(self):
        """explain_program must never crash on real search output."""
        from repro.core.grouping import unsupervised_grouping
        from repro.core.replacement import Replacement

        candidates = [
            Replacement("Lee, Mary", "M. Lee"),
            Replacement("Smith, James", "J. Smith"),
            Replacement("Street", "St"),
            Replacement("Avenue", "Ave"),
            Replacement("9th", "9"),
            Replacement("3rd", "3"),
        ]
        for group in unsupervised_grouping(candidates).groups:
            text = explain_program(group.program)
            assert isinstance(text, str) and text
