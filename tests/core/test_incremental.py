"""Tests for the incremental (top-k) grouping (Section 6, Theorem 6.4)."""

import pytest

from repro.config import Config
from repro.core.grouping import unsupervised_grouping
from repro.core.incremental import IncrementalGrouper
from repro.core.replacement import Replacement


@pytest.fixture
def figure2_candidates():
    return [
        Replacement("Lee, Mary", "M. Lee"),
        Replacement("Smith, James", "J. Smith"),
        Replacement("Lee, Mary", "Mary Lee"),
        Replacement("Smith, James", "James Smith"),
        Replacement("Mary Lee", "M. Lee"),
        Replacement("James Smith", "J. Smith"),
        Replacement("9th", "9"),
        Replacement("3rd", "3"),
        Replacement("Street", "St"),
        Replacement("Avenue", "Ave"),
    ]


@pytest.fixture
def bigger_candidates():
    """A mixed pool with one dominant group (ordinal strips)."""
    ordinals = [
        Replacement(f"{n}th", str(n)) for n in (4, 5, 6, 7, 8, 9, 11, 12)
    ]
    streets = [Replacement("Street", "St"), Replacement("Avenue", "Ave")]
    names = [
        Replacement("Lee, Mary", "Mary Lee"),
        Replacement("Smith, James", "James Smith"),
    ]
    return ordinals + streets + names


class TestOrdering:
    def test_first_group_is_largest(self, bigger_candidates):
        grouper = IncrementalGrouper(bigger_candidates)
        first = grouper.next_group()
        assert first is not None
        assert first.size == 8  # the ordinal strip family

    def test_sizes_non_increasing(self, bigger_candidates):
        """Theorem 6.4: groups arrive largest-first."""
        sizes = [g.size for g in IncrementalGrouper(bigger_candidates).groups()]
        assert sizes == sorted(sizes, reverse=True)

    def test_exhaustion_returns_none(self, figure2_candidates):
        grouper = IncrementalGrouper(figure2_candidates)
        list(grouper.groups())
        assert grouper.next_group() is None

    def test_limit(self, bigger_candidates):
        groups = list(IncrementalGrouper(bigger_candidates).groups(limit=2))
        assert len(groups) == 2


class TestTheorem64:
    def test_same_groups_as_oneshot(self, figure2_candidates):
        """Incremental and one-shot produce the same partition."""
        oneshot = {
            frozenset(g.replacements)
            for g in unsupervised_grouping(figure2_candidates).groups
        }
        incremental = {
            frozenset(g.replacements)
            for g in IncrementalGrouper(figure2_candidates).groups()
        }
        assert oneshot == incremental

    def test_same_groups_bigger_pool(self, bigger_candidates):
        oneshot = sorted(
            len(g.replacements)
            for g in unsupervised_grouping(bigger_candidates).groups
        )
        incremental = sorted(
            g.size for g in IncrementalGrouper(bigger_candidates).groups()
        )
        assert oneshot == incremental

    def test_partition_property(self, bigger_candidates):
        scattered = [
            r
            for g in IncrementalGrouper(bigger_candidates).groups()
            for r in g.replacements
        ]
        assert sorted(scattered) == sorted(bigger_candidates)

    def test_programs_consistent(self, bigger_candidates):
        for group in IncrementalGrouper(bigger_candidates).groups():
            for member in group.replacements:
                assert group.program.produces(member.lhs, member.rhs)


class TestRemoval:
    def test_removed_replacements_never_emitted(self, bigger_candidates):
        grouper = IncrementalGrouper(bigger_candidates)
        first = grouper.next_group()
        dead = {Replacement("Street", "St")}
        grouper.remove_replacements(dead)
        emitted = [r for g in grouper.groups() for r in g.replacements]
        assert Replacement("Street", "St") not in emitted
        assert Replacement("Avenue", "Ave") in emitted

    def test_removal_before_first_group(self, figure2_candidates):
        grouper = IncrementalGrouper(figure2_candidates)
        grouper.remove_replacements(set(figure2_candidates[:5]))
        emitted = [r for g in grouper.groups() for r in g.replacements]
        assert sorted(emitted) == sorted(figure2_candidates[5:])

    def test_remove_everything(self, figure2_candidates):
        grouper = IncrementalGrouper(figure2_candidates)
        grouper.remove_replacements(set(figure2_candidates))
        assert grouper.next_group() is None

    def test_remove_empty_set_is_noop(self, figure2_candidates):
        grouper = IncrementalGrouper(figure2_candidates)
        grouper.remove_replacements(set())
        assert grouper.next_group() is not None


class TestConfigurations:
    def test_without_structure(self, figure2_candidates):
        config = Config(use_structure=False)
        scattered = [
            r
            for g in IncrementalGrouper(figure2_candidates, config=config).groups()
            for r in g.replacements
        ]
        assert sorted(scattered) == sorted(figure2_candidates)

    def test_graphless_fallback(self):
        """Oversized strings still come out, as singletons."""
        config = Config(max_string_length=8)
        replacements = [
            Replacement("averylongstring" * 3, "anotherverylongone" * 3),
            Replacement("9th", "9"),
        ]
        groups = list(IncrementalGrouper(replacements, config=config).groups())
        assert sorted(g.size for g in groups) == [1, 1]

    def test_empty_pool(self):
        assert IncrementalGrouper([]).next_group() is None

    def test_single_replacement(self):
        groups = list(IncrementalGrouper([Replacement("a b", "b a")]).groups())
        assert len(groups) == 1 and groups[0].size == 1
