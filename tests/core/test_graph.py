"""Tests for transformation graph construction (Definition 2, App. C)."""

import pytest

from repro.config import Config
from repro.core.functions import ConstantStr, Prefix, SubStr, Suffix
from repro.core.graph import build_graph
from repro.core.program import Program
from repro.core.terms import MatchContext


@pytest.fixture
def lee_graph():
    return build_graph("Lee, Mary", "M. Lee")


class TestShape:
    def test_node_count(self, lee_graph):
        # |t|+1 nodes for t = "M. Lee" (Definition 2).
        assert lee_graph.num_nodes == 7
        assert lee_graph.last_node == 7

    def test_all_21_spans_with_permissive_config(self):
        # An edge (i, j) for every 1 <= i < j <= |t|+1: 21 edges (the
        # paper's Example 4.1 mentions all 21).  The default config's
        # aligned-constants static order drops unlabeled edges, so the
        # full count shows under a permissive config.
        config = Config(aligned_constants=False, boundary_positions_only=False)
        graph = build_graph("Lee, Mary", "M. Lee", config=config)
        assert len(graph.edges) == 21
        for (i, j), labels in graph.edges.items():
            assert ConstantStr("M. Lee"[i - 1 : j - 1]) in labels

    def test_aligned_edges_have_constant_label(self, lee_graph):
        # Unit boundaries of "M. Lee" are {1,2,3,4,7}; every aligned
        # span keeps its ConstantStr label.
        for i, j in [(1, 2), (2, 3), (3, 4), (4, 7), (1, 7), (2, 4)]:
            assert ConstantStr("M. Lee"[i - 1 : j - 1]) in lee_graph.labels(i, j)

    def test_unaligned_span_has_no_constant_label(self, lee_graph):
        # (5, 6) splits the "ee" run: no per-character constants.
        assert ConstantStr("e") not in lee_graph.labels(5, 6)

    def test_out_edges_sorted(self, lee_graph):
        for i, pairs in lee_graph.out_edges.items():
            targets = [j for j, _ in pairs]
            assert targets == sorted(targets)


class TestLabelCorrectness:
    def test_example_4_1_e47_contains_f1(self, lee_graph):
        # Edge e4,7 = "Lee" must carry a SubStr extracting "Lee".
        labels = lee_graph.labels(4, 7)
        ctx = MatchContext("Lee, Mary")
        substrs = [l for l in labels if isinstance(l, SubStr)]
        assert substrs, "expected SubStr labels on e4,7"
        assert all(l.outputs(ctx) == ["Lee"] for l in substrs)

    def test_full_constant_label_on_e17(self, lee_graph):
        assert ConstantStr("M. Lee") in lee_graph.labels(1, 7)

    def test_every_label_produces_the_edge_substring(self, lee_graph):
        """The graph invariant: every label on edge (i, j) outputs
        t[i, j) when applied to s."""
        ctx = MatchContext("Lee, Mary")
        for (i, j), labels in lee_graph.edges.items():
            expected = "M. Lee"[i - 1 : j - 1]
            for label in labels:
                assert label.produces(ctx, expected), (
                    f"label {label!r} on edge ({i},{j}) does not produce "
                    f"{expected!r}"
                )

    def test_paper_consistent_path_exists(self, lee_graph):
        # The Figure 3 program f2 ⊕ f3 ⊕ f1 corresponds to a path
        # n1 -> n2 -> n4 -> n7; each hop must exist with a suitable label.
        ctx = MatchContext("Lee, Mary")
        assert any(l.produces(ctx, "M") for l in lee_graph.labels(1, 2))
        assert any(l.produces(ctx, ". ") for l in lee_graph.labels(2, 4))
        assert any(l.produces(ctx, "Lee") for l in lee_graph.labels(4, 7))


class TestAffixLabels:
    def test_street_st_prefix(self):
        # Example D.1: edge e2,3 of Street -> St has Prefix(Tl, 1).
        graph = build_graph("Street", "St")
        labels = graph.labels(2, 3)
        assert any(isinstance(l, Prefix) for l in labels)

    def test_avenue_ave_prefix(self):
        graph = build_graph("Avenue", "Ave")
        labels = graph.labels(2, 4)
        assert any(isinstance(l, Prefix) for l in labels)

    def test_longest_only_rule(self):
        # For Street -> Stre, prefixes 't', 'tr', 'tre' of 'treet' all
        # start at node 2; only the longest ('tre', edge (2,5)) is
        # labeled (static order, Appendix E).
        graph = build_graph("Street", "Stre")
        assert any(isinstance(l, Prefix) for l in graph.labels(2, 5))
        assert not any(isinstance(l, Prefix) for l in graph.labels(2, 4))
        assert not any(isinstance(l, Prefix) for l in graph.labels(2, 3))

    def test_suffix_labels(self):
        # "reet" is a proper suffix of 'treet'.
        graph = build_graph("Street", "reet")
        assert any(isinstance(l, Suffix) for l in graph.labels(1, 5))

    def test_no_affix_when_disabled(self):
        config = Config(use_affix=False)
        graph = build_graph("Street", "St", config=config)
        for _, labels in graph.edges.items():
            assert not any(isinstance(l, (Prefix, Suffix)) for l in labels)


class TestGuards:
    def test_oversized_strings_get_no_graph(self):
        config = Config(max_string_length=10)
        assert build_graph("a" * 11, "b", config=config) is None
        assert build_graph("a", "b" * 11, config=config) is None

    def test_empty_target_gets_no_graph(self):
        assert build_graph("abc", "") is None

    def test_empty_source_gets_no_graph(self):
        assert build_graph("", "abc") is None

    def test_position_function_cap_respected(self):
        config = Config(max_position_functions=1, max_substr_labels_per_edge=1)
        graph = build_graph("ab", "ab", config=config)
        for _, labels in graph.edges.items():
            substrs = [l for l in labels if isinstance(l, SubStr)]
            assert len(substrs) <= config.max_occurrences_per_edge
