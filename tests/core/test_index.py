"""Tests for the inverted index and adjacency-aware intersection,
validated against the paper's Example 5.1."""

import pytest

from repro.core.functions import ConstantStr, SubStr
from repro.core.graph import build_graph
from repro.core.index import InvertedIndex
from repro.core.positions import BEGIN, END, MatchPos
from repro.core.terms import CAPITALS, LOWERCASE, MatchContext, WHITESPACE


@pytest.fixture
def example_51_index():
    """Example 5.1: three replacement graphs."""
    index = InvertedIndex()
    g1 = build_graph("Lee, Mary", "M. Lee")
    g2 = build_graph("Smith, James", "J. Smith")
    g3 = build_graph("Lee, Mary", "Mary Lee")
    index.add_graphs([g1, g2, g3])
    return index, g1, g2, g3


def _find_label(graph, i, j, produces_text):
    ctx = MatchContext(graph.source)
    for label in graph.labels(i, j):
        if isinstance(label, SubStr) and label.produces(ctx, produces_text):
            return label
    raise AssertionError(f"no SubStr label on ({i},{j}) producing {produces_text!r}")


class TestPostings:
    def test_gids_assigned_sequentially(self, example_51_index):
        index, g1, g2, g3 = example_51_index
        assert (g1.gid, g2.gid, g3.gid) == (0, 1, 2)

    def test_last_nodes_tracked(self, example_51_index):
        index, g1, g2, g3 = example_51_index
        assert index.last_node[g1.gid] == 7
        assert index.last_node[g2.gid] == 9
        assert index.last_node[g3.gid] == 9

    def test_constant_posting_single_graph(self, example_51_index):
        index, g1, _, _ = example_51_index
        posting = index.posting(ConstantStr("M. Lee"))
        assert set(posting) == {g1.gid}
        assert posting[g1.gid] == {1: (7,)}

    def test_posting_size_counts_graphs(self, example_51_index):
        index, g1, g2, g3 = example_51_index
        # f2-style label: extract the capital after the whitespace;
        # present in all three graphs (each target starts with it).
        f2 = SubStr(MatchPos(WHITESPACE, 1, END), MatchPos(CAPITALS, -1, END))
        assert index.posting_size(f2) == 3

    def test_posting_size_live_filtering(self, example_51_index):
        index, g1, g2, g3 = example_51_index
        f2 = SubStr(MatchPos(WHITESPACE, 1, END), MatchPos(CAPITALS, -1, END))
        assert index.posting_size_live(f2, {g1.gid}) == 1
        assert index.posting_size_live(f2, None) == 3

    def test_unknown_label_empty(self, example_51_index):
        index, *_ = example_51_index
        assert index.posting(ConstantStr("nope")) == {}
        assert index.posting_size(ConstantStr("nope")) == 0


class TestIntersection:
    def test_example_51_path_intersection(self, example_51_index):
        """I[f2] ∩ I[f3] ∩ I[f1] = {<G1,1,7>, <G2,1,9>} (Example 5.1)."""
        index, g1, g2, g3 = example_51_index
        f2 = _find_label(g1, 1, 2, "M")
        f3 = ConstantStr(". ")
        f1 = _find_label(g1, 4, 7, "Lee")

        state = index.initial_state(f2)
        assert set(state) == {g1.gid, g2.gid, g3.gid}  # all start with a capital

        state = index.extend_state(state, f3)
        assert set(state) == {g1.gid, g2.gid}  # G3 has no '. '

        state = index.extend_state(state, f1)
        assert state[g1.gid] == frozenset({7})
        assert state[g2.gid] == frozenset({9})

        members = index.complete_members(state)
        assert members == (g1.gid, g2.gid)

    def test_adjacency_required(self, example_51_index):
        """Non-adjacent edges must not join (Section 5.1)."""
        index, g1, _, _ = example_51_index
        f2 = _find_label(g1, 1, 2, "M")
        f1 = _find_label(g1, 4, 7, "Lee")
        state = index.initial_state(f2)  # ends at node 2
        state = index.extend_state(state, f1)  # needs start node 2, not 4
        assert g1.gid not in state

    def test_initial_state_requires_start_node_one(self, example_51_index):
        index, g1, _, _ = example_51_index
        f1 = _find_label(g1, 4, 7, "Lee")  # starts at node 4
        state = index.initial_state(f1)
        assert g1.gid not in state

    def test_live_filtering_in_joins(self, example_51_index):
        index, g1, g2, g3 = example_51_index
        f2 = _find_label(g1, 1, 2, "M")
        state = index.initial_state(f2, live={g2.gid})
        assert set(state) == {g2.gid}

    def test_state_size_with_live(self, example_51_index):
        index, g1, g2, g3 = example_51_index
        f2 = _find_label(g1, 1, 2, "M")
        state = index.initial_state(f2)
        assert index.state_size(state) == 3
        assert index.state_size(state, {g1.gid, g2.gid}) == 2
