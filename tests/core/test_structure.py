"""Tests for structure signatures and refinement (Section 7.2)."""

import pytest

from repro.core.replacement import Replacement
from repro.core.structure import (
    partition_by_structure,
    structurally_equivalent,
    structure_key,
    structure_signature,
)


class TestStructureSignature:
    def test_paper_example_9(self):
        # Struc("9") = Td (Section 7.2).
        assert structure_signature("9") == ("d",)

    def test_paper_example_9th(self):
        # Struc("9th") = Td Tl.
        assert structure_signature("9th") == ("d", "l")

    def test_runs_collapse(self):
        assert structure_signature("abc") == ("l",)
        assert structure_signature("ABC") == ("C",)
        assert structure_signature("123") == ("d",)
        assert structure_signature("   ") == ("b",)

    def test_single_char_terms_do_not_collapse(self):
        # Characters outside the four classes each form their own term.
        assert structure_signature("--") == ("-", "-")

    def test_mixed(self):
        assert structure_signature("A-1") == ("C", "-", "d")

    def test_name_structure(self):
        assert structure_signature("Lee, Mary") == ("C", "l", ",", "b", "C", "l")

    def test_empty(self):
        assert structure_signature("") == ()

    def test_class_alternation(self):
        assert structure_signature("a1a") == ("l", "d", "l")

    def test_unicode_nonascii_digit_is_single_char(self):
        # Non-ASCII digits are not [0-9]: they become single-char terms.
        assert structure_signature("٣") == ("٣",)


class TestStructureEquivalence:
    def test_paper_example_ordinals(self):
        # 9 -> 9th and 3 -> 3rd share structure Td -> TdTl (Section 7.2).
        a = Replacement("9", "9th")
        b = Replacement("3", "3rd")
        assert structurally_equivalent(a, b)

    def test_both_sides_must_match(self):
        a = Replacement("9", "9th")
        c = Replacement("9", "9-")
        assert not structurally_equivalent(a, c)

    def test_key_shape(self):
        key = structure_key(Replacement("9", "9th"))
        assert key == (("d",), ("d", "l"))


class TestPartition:
    def test_partition_is_disjoint_and_complete(self):
        replacements = [
            Replacement("9", "9th"),
            Replacement("3", "3rd"),
            Replacement("Street", "St"),
            Replacement("Avenue", "Ave"),
            Replacement("Mary Lee", "M. Lee"),
        ]
        buckets = partition_by_structure(replacements)
        scattered = [r for bucket in buckets.values() for r in bucket]
        assert sorted(scattered) == sorted(replacements)
        # ordinals together; street words together; the name alone
        assert len(buckets) == 3

    def test_order_preserved_within_bucket(self):
        replacements = [Replacement("9", "9th"), Replacement("3", "3rd")]
        buckets = partition_by_structure(replacements)
        bucket = buckets[(("d",), ("d", "l"))]
        assert bucket == replacements

    def test_empty_input(self):
        assert partition_by_structure([]) == {}
