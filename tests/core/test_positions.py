"""Tests for position functions against the paper's Appendix B examples."""

import pytest

from repro.core.positions import (
    BEGIN,
    END,
    ConstPos,
    MatchPos,
    position_candidates,
)
from repro.core.terms import CAPITALS, LOWERCASE, MatchContext, WHITESPACE


@pytest.fixture
def lee_mary():
    return MatchContext("Lee, Mary")


class TestConstPos:
    def test_forward_example(self, lee_mary):
        # Paper Example B.1: ConstPos(2) = 2.
        assert ConstPos(2).evaluate(lee_mary) == 2

    def test_backward_example(self, lee_mary):
        # Paper Example B.1: ConstPos(-5) = 9 + 2 - 5 = 6.
        assert ConstPos(-5).evaluate(lee_mary) == 6

    def test_forward_bound(self, lee_mary):
        assert ConstPos(10).evaluate(lee_mary) == 10  # |s|+1
        assert ConstPos(11).evaluate(lee_mary) is None

    def test_backward_bound(self, lee_mary):
        assert ConstPos(-1).evaluate(lee_mary) == 10
        assert ConstPos(-10).evaluate(lee_mary) == 1
        assert ConstPos(-11).evaluate(lee_mary) is None

    def test_zero_is_invalid(self, lee_mary):
        assert ConstPos(0).evaluate(lee_mary) is None


class TestMatchPos:
    def test_paper_example_begin(self, lee_mary):
        # Example B.1: MatchPos(TC, 2, B) = 6.
        assert MatchPos(CAPITALS, 2, BEGIN).evaluate(lee_mary) == 6

    def test_paper_example_end(self, lee_mary):
        # Example B.1: MatchPos(TC, 2, E) = 7.
        assert MatchPos(CAPITALS, 2, END).evaluate(lee_mary) == 7

    def test_figure3_pa(self, lee_mary):
        # Figure 4: PA (begin of 1st capitals match) = 1.
        assert MatchPos(CAPITALS, 1, BEGIN).evaluate(lee_mary) == 1

    def test_figure3_pb(self, lee_mary):
        # PB: end of 1st lowercase match ("ee") = 4.
        assert MatchPos(LOWERCASE, 1, END).evaluate(lee_mary) == 4

    def test_figure3_pc(self, lee_mary):
        # PC: end of 1st whitespace match = 6.
        assert MatchPos(WHITESPACE, 1, END).evaluate(lee_mary) == 6

    def test_figure3_pd(self, lee_mary):
        # PD: end of last (-1st) capitals match = 7.
        assert MatchPos(CAPITALS, -1, END).evaluate(lee_mary) == 7

    def test_backward_index(self, lee_mary):
        assert MatchPos(CAPITALS, -2, BEGIN).evaluate(lee_mary) == 1

    def test_out_of_range(self, lee_mary):
        assert MatchPos(CAPITALS, 3, BEGIN).evaluate(lee_mary) is None
        assert MatchPos(CAPITALS, -3, BEGIN).evaluate(lee_mary) is None

    def test_zero_is_invalid(self, lee_mary):
        assert MatchPos(CAPITALS, 0, BEGIN).evaluate(lee_mary) is None


class TestPositionCandidates:
    def test_every_position_has_candidates(self, lee_mary):
        table = position_candidates(lee_mary)
        assert set(table) == set(range(1, 11))
        assert all(table[k] for k in table)

    def test_candidates_locate_their_position(self, lee_mary):
        table = position_candidates(lee_mary)
        for position, functions in table.items():
            for fn in functions:
                assert fn.evaluate(lee_mary) == position

    def test_truncation(self, lee_mary):
        table = position_candidates(lee_mary, max_per_position=2)
        assert all(len(fns) <= 2 for fns in table.values())

    def test_static_order_prefers_matchpos(self, lee_mary):
        # Position 1 is located by both MatchPos(TC, 1, B) and
        # ConstPos(1); the static order puts MatchPos first.
        table = position_candidates(lee_mary, max_per_position=1)
        assert isinstance(table[1][0], MatchPos)

    def test_constpos_always_present_untruncated(self, lee_mary):
        table = position_candidates(lee_mary)
        # Position 5 (the space) gets ConstPos among others.
        assert any(isinstance(fn, ConstPos) for fn in table[5])
