"""Tests for the exact optimal-partition solver (Definition 3)."""

import pytest

from repro.config import Config
from repro.core.grouping import unsupervised_grouping
from repro.core.graph import build_graph
from repro.core.optimal import (
    enumerate_paths,
    minimum_partition_size,
    path_cover_sets,
)
from repro.core.program import Program
from repro.core.replacement import Replacement

TINY = Config(max_path_length=4)


class TestEnumeratePaths:
    def test_paths_are_consistent_programs(self):
        graph = build_graph("9th", "9")
        for path in enumerate_paths(graph, max_length=4):
            assert Program(path).produces("9th", "9")

    def test_includes_trivial_constant_path(self):
        graph = build_graph("abc", "xyz")
        keys = {tuple(f.canonical() for f in p) for p in enumerate_paths(graph, 4)}
        assert (("const", "xyz"),) in keys

    def test_cap_enforced(self):
        graph = build_graph("Lee, Mary", "M. Lee")
        with pytest.raises(ValueError):
            enumerate_paths(graph, max_length=6, cap=3)


class TestPathCoverSets:
    def test_shared_path_covers_both(self):
        replacements = [Replacement("9th", "9"), Replacement("3rd", "3")]
        cover = path_cover_sets(replacements, config=TINY)
        assert frozenset({0, 1}) in set(cover.values())

    def test_every_replacement_covered(self):
        replacements = [Replacement("9th", "9"), Replacement("ab", "cd")]
        cover = path_cover_sets(replacements, config=TINY)
        covered = set()
        for members in cover.values():
            covered |= members
        assert covered == {0, 1}


class TestMinimumPartition:
    def test_empty(self):
        assert minimum_partition_size([]) == 0

    def test_singleton(self):
        assert minimum_partition_size([Replacement("a b", "b a")], config=TINY) == 1

    def test_groupable_pair_needs_one_group(self):
        replacements = [Replacement("9th", "9"), Replacement("3rd", "3")]
        assert minimum_partition_size(replacements, config=TINY) == 1

    def test_ungroupable_pair_needs_two(self):
        replacements = [Replacement("9th", "9"), Replacement("x", "yy")]
        assert minimum_partition_size(replacements, config=TINY) == 2

    def test_greedy_never_beats_optimal(self):
        """The greedy pivot partition is valid, hence >= the optimum."""
        replacements = [
            Replacement("9th", "9"),
            Replacement("3rd", "3"),
            Replacement("21st", "21"),
            Replacement("ab", "ba"),
        ]
        optimal = minimum_partition_size(replacements, config=TINY)
        greedy = len(unsupervised_grouping(replacements, config=TINY).groups)
        assert greedy >= optimal

    def test_greedy_matches_optimal_on_clean_families(self):
        replacements = [
            Replacement("9th", "9"),
            Replacement("3rd", "3"),
            Replacement("45th", "45"),
        ]
        optimal = minimum_partition_size(replacements, config=TINY)
        greedy = len(unsupervised_grouping(replacements, config=TINY).groups)
        assert greedy == optimal == 1
