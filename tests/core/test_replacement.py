"""Tests for the Replacement value object."""

import pytest

from repro.core.replacement import Replacement


class TestReplacement:
    def test_holds_both_sides(self):
        r = Replacement("a", "b")
        assert r.lhs == "a" and r.rhs == "b"

    def test_identical_sides_rejected(self):
        with pytest.raises(ValueError):
            Replacement("same", "same")

    def test_reversed(self):
        r = Replacement("a", "b")
        assert r.reversed() == Replacement("b", "a")
        assert r.reversed().reversed() == r

    def test_hashable_and_equal(self):
        assert Replacement("a", "b") == Replacement("a", "b")
        assert len({Replacement("a", "b"), Replacement("a", "b")}) == 1

    def test_directed(self):
        assert Replacement("a", "b") != Replacement("b", "a")

    def test_ordering_is_lexicographic(self):
        assert Replacement("a", "b") < Replacement("a", "c") < Replacement("b", "a")

    def test_repr(self):
        assert repr(Replacement("a", "b")) == "'a' -> 'b'"
