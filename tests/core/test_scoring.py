"""Tests for the Appendix E constant-string scoring."""

from collections import Counter

import pytest

from repro.core.replacement import Replacement
from repro.core.scoring import (
    global_frequencies,
    group_frequencies,
    score_constant,
    tokenize_for_scoring,
    top_constant_terms,
)


class TestTokenize:
    def test_splits_letter_digit_punct_runs(self):
        assert tokenize_for_scoring("Mr. Lee-9") == ["Mr", ".", "Lee", "-", "9"]

    def test_whitespace_dropped(self):
        assert tokenize_for_scoring("a  b") == ["a", "b"]

    def test_empty(self):
        assert tokenize_for_scoring("") == []


class TestFrequencies:
    def test_global_counts(self):
        counts = global_frequencies(["Mr. Lee", "Mr. Ray"])
        assert counts["Mr"] == 2
        assert counts["Lee"] == 1

    def test_group_counts_both_sides(self):
        counts = group_frequencies([Replacement("Mr. Lee", "Lee")])
        assert counts["Lee"] == 2
        assert counts["Mr"] == 1


class TestScore:
    def test_formula(self):
        # freqStruc / sqrt(freqGlobal) (Appendix E).
        assert score_constant("x", 4, 16) == 1.0

    def test_zero_global(self):
        assert score_constant("x", 4, 0) == 0.0

    def test_prefers_group_local_strings(self):
        # "Mr" frequent in group and globally rare beats a string that
        # is frequent everywhere.
        everywhere = score_constant("the", 5, 10000)
        local = score_constant("Mr", 5, 25)
        assert local > everywhere


class TestTopConstantTerms:
    def test_selects_group_local_tokens(self):
        group = [
            Replacement("Mr. Lee", "Lee"),
            Replacement("Mr. Ray", "Ray"),
            Replacement("Mr. Kim", "Kim"),
        ]
        counts = Counter({"Mr": 10, "Lee": 500, "Ray": 400, "Kim": 450, ".": 9000})
        top = top_constant_terms(group, counts, 1)
        assert top == ["Mr"]

    def test_single_characters_skipped(self):
        group = [Replacement("a b", "b a")]
        counts = Counter({"a": 1, "b": 1})
        assert top_constant_terms(group, counts, 5) == []

    def test_zero_budget(self):
        assert top_constant_terms([], Counter(), 0) == []

    def test_deterministic_on_ties(self):
        group = [Replacement("xx yy", "yy xx")]
        counts = Counter({"xx": 4, "yy": 4})
        assert top_constant_terms(group, counts, 2) == ["xx", "yy"]
