"""Tests for the static-order configuration knobs of graph building
(DESIGN.md §5.11)."""

import pytest

from repro.config import Config
from repro.core.functions import ConstantStr, SubStr
from repro.core.graph import _unit_boundaries, build_graph
from repro.core.terms import MatchContext


class TestUnitBoundaries:
    def test_paper_example(self):
        # "M. Lee" decomposes as [C][.][b][C][ll]: boundaries 1,2,3,4,5,7.
        assert _unit_boundaries("M. Lee") == frozenset({1, 2, 3, 4, 5, 7})

    def test_single_run(self):
        assert _unit_boundaries("abc") == frozenset({1, 4})

    def test_punctuation_units(self):
        # Each non-class char is its own unit.
        assert _unit_boundaries("a--b") == frozenset({1, 2, 3, 4, 5})

    def test_digit_letter_transition(self):
        assert _unit_boundaries("9th") == frozenset({1, 2, 4})


class TestAlignedConstants:
    def test_full_target_constant_always_present(self):
        graph = build_graph("abc", "zzz", config=Config(scored_constants=False))
        assert ConstantStr("zzz") in graph.labels(1, 4)

    def test_mid_run_constants_absent_by_default(self):
        graph = build_graph("abc", "xyz", config=Config(scored_constants=False))
        assert ConstantStr("y") not in graph.labels(2, 3)

    def test_mid_run_constants_present_when_disabled(self):
        config = Config(aligned_constants=False, scored_constants=False)
        graph = build_graph("abc", "xyz", config=config)
        assert ConstantStr("y") in graph.labels(2, 3)


class TestBoundaryPositions:
    def test_mid_token_substr_absent_by_default(self):
        # Extracting "ab" from "abc" requires a position function at 3
        # (mid-run): unavailable under boundary_positions_only.
        graph = build_graph("abc", "ab")
        assert not any(
            isinstance(l, SubStr) for l in graph.labels(1, 3)
        )

    def test_mid_token_substr_present_when_disabled(self):
        config = Config(boundary_positions_only=False)
        graph = build_graph("abc", "ab", config=config)
        assert any(isinstance(l, SubStr) for l in graph.labels(1, 3))

    def test_affix_still_covers_mid_token(self):
        # The designed escape hatch: "ab" is a proper prefix of "abc".
        from repro.core.functions import Prefix

        graph = build_graph("abc", "ab")
        assert any(isinstance(l, Prefix) for l in graph.labels(1, 3))

    def test_whole_token_substr_survives(self):
        graph = build_graph("abc def", "def")
        ctx = MatchContext("abc def")
        substrs = [l for l in graph.labels(1, 4) if isinstance(l, SubStr)]
        assert substrs
        assert all(l.produces(ctx, "def") for l in substrs)


class TestScoredConstantsWhitelist:
    def test_whitelist_blocks_rare_tokens(self):
        graph = build_graph(
            "abc", "xy z", constant_whitelist=frozenset({"xy"})
        )
        # "xy" aligned and whitelisted.
        assert ConstantStr("xy") in graph.labels(1, 3)
        # "z" not whitelisted: no label on its edge...
        assert ConstantStr("z") not in graph.labels(4, 5)
        # ...but the full target stays (completeness).
        assert ConstantStr("xy z") in graph.labels(1, 5)

    def test_separators_always_pass(self):
        graph = build_graph("abc", "x, y", constant_whitelist=frozenset())
        assert ConstantStr(", ") in graph.labels(2, 4)
