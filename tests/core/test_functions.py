"""Tests for string functions, including the affix extension."""

import pytest

from repro.core.functions import (
    ConstantStr,
    Prefix,
    SubStr,
    Suffix,
    label_sort_key,
)
from repro.core.positions import BEGIN, END, ConstPos, MatchPos
from repro.core.terms import CAPITALS, LOWERCASE, MatchContext, WHITESPACE


@pytest.fixture
def lee_mary():
    return MatchContext("Lee, Mary")


class TestConstantStr:
    def test_outputs_constant(self, lee_mary):
        # Paper Example B.2: ConstantStr("MIT") = "MIT".
        assert ConstantStr("MIT").outputs(lee_mary) == ["MIT"]

    def test_produces(self, lee_mary):
        assert ConstantStr("x").produces(lee_mary, "x")
        assert not ConstantStr("x").produces(lee_mary, "y")


class TestSubStr:
    def test_paper_example(self, lee_mary):
        # Example B.2: SubStr(MatchPos(TC,1,B), MatchPos(Tl,1,E)) = "Lee".
        fn = SubStr(MatchPos(CAPITALS, 1, BEGIN), MatchPos(LOWERCASE, 1, END))
        assert fn.outputs(lee_mary) == ["Lee"]

    def test_figure3_f1(self, lee_mary):
        # f1 = Substring(PA, PB) = "Lee".
        fn = SubStr(MatchPos(CAPITALS, 1, BEGIN), MatchPos(LOWERCASE, 1, END))
        assert fn.outputs(lee_mary) == ["Lee"]

    def test_figure3_f2(self, lee_mary):
        # f2 = Substring(PC, PD) = "M" (between whitespace end and last
        # capital end).
        fn = SubStr(MatchPos(WHITESPACE, 1, END), MatchPos(CAPITALS, -1, END))
        assert fn.outputs(lee_mary) == ["M"]

    def test_const_positions(self, lee_mary):
        assert SubStr(ConstPos(1), ConstPos(4)).outputs(lee_mary) == ["Lee"]

    def test_invalid_when_left_not_less_than_right(self, lee_mary):
        assert SubStr(ConstPos(4), ConstPos(4)).outputs(lee_mary) == []
        assert SubStr(ConstPos(5), ConstPos(4)).outputs(lee_mary) == []

    def test_invalid_when_position_fails(self, lee_mary):
        fn = SubStr(MatchPos(CAPITALS, 9, BEGIN), ConstPos(4))
        assert fn.outputs(lee_mary) == []

    def test_produces(self, lee_mary):
        fn = SubStr(ConstPos(1), ConstPos(4))
        assert fn.produces(lee_mary, "Lee")
        assert not fn.produces(lee_mary, "Mary")


class TestPrefix:
    def test_appendix_d_example(self):
        # Street -> St: 't' is a prefix of the 1st lowercase match 'treet'.
        ctx = MatchContext("Street")
        assert Prefix(LOWERCASE, 1).produces(ctx, "t")
        assert Prefix(LOWERCASE, 1).produces(ctx, "tree")

    def test_avenue_example(self):
        # Avenue -> Ave: 've' is a prefix of 'venue'.
        ctx = MatchContext("Avenue")
        assert Prefix(LOWERCASE, 1).produces(ctx, "ve")

    def test_proper_prefix_only(self):
        ctx = MatchContext("Street")
        # The whole match 'treet' is not a *proper* prefix.
        assert not Prefix(LOWERCASE, 1).produces(ctx, "treet")

    def test_outputs_all_proper_prefixes(self):
        ctx = MatchContext("abc X")
        assert Prefix(LOWERCASE, 1).outputs(ctx) == ["a", "ab"]

    def test_backward_index(self):
        ctx = MatchContext("abc def")
        assert Prefix(LOWERCASE, -1).produces(ctx, "de")

    def test_missing_match(self):
        ctx = MatchContext("123")
        assert Prefix(LOWERCASE, 1).outputs(ctx) == []


class TestSuffix:
    def test_outputs_all_proper_suffixes(self):
        ctx = MatchContext("abc X")
        assert Suffix(LOWERCASE, 1).outputs(ctx) == ["bc", "c"]

    def test_produces(self):
        ctx = MatchContext("Street")
        assert Suffix(LOWERCASE, 1).produces(ctx, "reet")
        assert not Suffix(LOWERCASE, 1).produces(ctx, "treet")

    def test_missing_match(self):
        ctx = MatchContext("123")
        assert Suffix(LOWERCASE, 1).outputs(ctx) == []


class TestLabelSortKey:
    def test_substr_sorts_before_affix_and_const(self, lee_mary):
        substr = SubStr(ConstPos(1), ConstPos(4))
        prefix = Prefix(LOWERCASE, 1)
        const = ConstantStr("Lee")
        ordered = sorted([const, prefix, substr], key=label_sort_key)
        assert ordered == [substr, prefix, const]

    def test_deterministic_on_equal_class(self):
        a = ConstantStr("a")
        b = ConstantStr("b")
        assert label_sort_key(a) < label_sort_key(b)
