"""Tests for pivot-path search (Algorithms 3-4, Table 5, Example 5.2)."""

import pytest

from repro.config import Config
from repro.core.functions import ConstantStr, SubStr
from repro.core.graph import build_graph
from repro.core.index import InvertedIndex
from repro.core.pivot import (
    GlobalBounds,
    PivotCandidate,
    SearchStats,
    initial_upper_bound,
    search_pivot,
)
from repro.core.program import Program


@pytest.fixture
def example_graphs():
    """Example 5.1 / 5.2: phi1, phi2, phi3 and their index."""
    index = InvertedIndex()
    g1 = build_graph("Lee, Mary", "M. Lee")
    g2 = build_graph("Smith, James", "J. Smith")
    g3 = build_graph("Lee, Mary", "Mary Lee")
    index.add_graphs([g1, g2, g3])
    return index, g1, g2, g3


class TestSearchPivot:
    def test_paper_table5_trace(self, example_graphs):
        """Example 5.2: the pivot of G1 is shared by G1 and G2 and
        produces 'M. Lee' / 'J. Smith' — the f2 ⊕ f3 ⊕ f1 family."""
        index, g1, g2, g3 = example_graphs
        found = search_pivot(g1, index)
        assert found is not None
        assert found.count == 2
        assert set(found.members) == {g1.gid, g2.gid}
        program = Program(found.path)
        assert program.produces("Lee, Mary", "M. Lee")
        assert program.produces("Smith, James", "J. Smith")

    def test_transpose_pivot(self, example_graphs):
        index, g1, g2, g3 = example_graphs
        found = search_pivot(g3, index)
        assert found is not None
        # G3 ("Lee, Mary" -> "Mary Lee") shares no path with the
        # initialed graphs beyond itself.
        assert found.count == 1
        assert Program(found.path).produces("Lee, Mary", "Mary Lee")

    def test_threshold_zero_always_succeeds(self, example_graphs):
        index, g1, _, _ = example_graphs
        assert search_pivot(g1, index, threshold=0) is not None

    def test_threshold_filters(self, example_graphs):
        index, g1, g2, g3 = example_graphs
        assert search_pivot(g3, index, threshold=1) is None
        found = search_pivot(g1, index, threshold=1)
        assert found is not None and found.count == 2

    def test_threshold_at_best_returns_none(self, example_graphs):
        index, g1, _, _ = example_graphs
        assert search_pivot(g1, index, threshold=2) is None

    def test_live_filtering(self, example_graphs):
        index, g1, g2, g3 = example_graphs
        found = search_pivot(g1, index, live={g1.gid, g3.gid})
        assert found is not None
        assert found.count == 1  # G2 excluded, no sharing left

    def test_stats_instrumentation(self, example_graphs):
        index, g1, _, _ = example_graphs
        stats = SearchStats()
        search_pivot(g1, index, stats=stats)
        assert stats.searches == 1
        assert stats.expansions > 0
        assert stats.completions > 0

    def test_oneshot_mode_finds_same_best(self, example_graphs):
        """Without early termination (OneShot) the best count matches."""
        index, g1, _, _ = example_graphs
        config = Config().without_early_termination()
        pruned = search_pivot(g1, index)
        full = search_pivot(g1, index, config=config)
        assert full is not None and pruned is not None
        assert full.count == pruned.count

    def test_search_is_deterministic(self, example_graphs):
        index, g1, _, _ = example_graphs
        a = search_pivot(g1, index)
        b = search_pivot(g1, index)
        assert a.path == b.path and a.members == b.members


class TestGlobalBounds:
    def test_record_updates_lower_bounds(self, example_graphs):
        index, g1, g2, g3 = example_graphs
        bounds = GlobalBounds()
        search_pivot(g1, index, bounds=bounds)
        # Example 5.3: finding the f2 ⊕ f3 ⊕ f1 path sets the global
        # threshold of G2 (a member of the path's list) to 2.
        assert bounds.lower(g2.gid) == 2
        assert bounds.lower(g1.gid) == 2

    def test_witness_survives_refresh(self, example_graphs):
        index, g1, g2, g3 = example_graphs
        bounds = GlobalBounds()
        search_pivot(g1, index, bounds=bounds)
        bounds.refresh({g1.gid, g2.gid, g3.gid})
        assert bounds.lower(g1.gid) == 2

    def test_refresh_filters_dead_members(self, example_graphs):
        index, g1, g2, g3 = example_graphs
        bounds = GlobalBounds()
        search_pivot(g1, index, bounds=bounds)
        bounds.refresh({g1.gid, g3.gid})  # G2 removed
        assert bounds.lower(g1.gid) == 1  # witness filtered down to {G1}

    def test_best_witness(self, example_graphs):
        index, g1, g2, g3 = example_graphs
        bounds = GlobalBounds()
        search_pivot(g1, index, bounds=bounds)
        top = bounds.best({g1.gid, g2.gid, g3.gid})
        assert top is not None and top.count == 2

    def test_global_floor_speeds_second_search(self, example_graphs):
        """After searching G1, G2's floor prunes paths below 2."""
        index, g1, g2, g3 = example_graphs
        bounds = GlobalBounds()
        search_pivot(g1, index, bounds=bounds)
        stats = SearchStats()
        found = search_pivot(g2, index, bounds=bounds, stats=stats)
        assert found is not None and found.count == 2


class TestUpperBounds:
    def test_lemma_6_2_bound_holds(self, example_graphs):
        index, g1, g2, g3 = example_graphs
        for graph in (g1, g2, g3):
            found = search_pivot(graph, index)
            assert found.count <= initial_upper_bound(graph, index)

    def test_example_6_3_g3_bound_is_1(self, example_graphs):
        """Example 6.1: the upper bound of G3 is 1 — some position of
        'Mary Lee' is only producible by G3-specific labels."""
        index, g1, g2, g3 = example_graphs
        assert initial_upper_bound(g3, index) >= 1
        # G1's bound must be at least its true pivot count (2).
        assert initial_upper_bound(g1, index) >= 2

    def test_budget_truncation_still_returns_path(self, example_graphs):
        index, g1, _, _ = example_graphs
        config = Config(max_search_expansions=3)
        found = search_pivot(g1, index, config=config)
        assert found is not None  # best-so-far under a tiny budget
