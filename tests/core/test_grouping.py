"""Tests for one-shot unsupervised grouping (Algorithm 2, Figure 2)."""

import pytest

from repro.config import Config
from repro.core.grouping import (
    Group,
    group_sort_key,
    singleton_group,
    unsupervised_grouping,
)
from repro.core.program import Program
from repro.core.replacement import Replacement


@pytest.fixture
def figure2_candidates():
    """The candidate replacements of the paper's Figure 2."""
    return [
        Replacement("Lee, Mary", "M. Lee"),
        Replacement("Smith, James", "J. Smith"),
        Replacement("Lee, Mary", "Mary Lee"),
        Replacement("Smith, James", "James Smith"),
        Replacement("Mary Lee", "M. Lee"),
        Replacement("James Smith", "J. Smith"),
        Replacement("9th", "9"),
        Replacement("3rd", "3"),
        Replacement("Street", "St"),
        Replacement("Avenue", "Ave"),
    ]


def _group_sets(groups):
    return {frozenset(g.replacements) for g in groups}


class TestFigure2:
    def test_paper_groups_recovered(self, figure2_candidates):
        outcome = unsupervised_grouping(figure2_candidates)
        expected = {
            # Group 1: transpose first/last name.
            frozenset(
                {
                    Replacement("Lee, Mary", "Mary Lee"),
                    Replacement("Smith, James", "James Smith"),
                }
            ),
            # Group 2: initial of first name + last name.
            frozenset(
                {
                    Replacement("Lee, Mary", "M. Lee"),
                    Replacement("Smith, James", "J. Smith"),
                }
            ),
            # Group: first-name initialing from "First Last".
            frozenset(
                {
                    Replacement("Mary Lee", "M. Lee"),
                    Replacement("James Smith", "J. Smith"),
                }
            ),
            # Group 3: drop ordinal suffix.
            frozenset({Replacement("9th", "9"), Replacement("3rd", "3")}),
            # Group 4: street-type abbreviation (needs affix functions).
            frozenset(
                {Replacement("Street", "St"), Replacement("Avenue", "Ave")}
            ),
        }
        assert expected <= _group_sets(outcome.groups)

    def test_partition_property(self, figure2_candidates):
        outcome = unsupervised_grouping(figure2_candidates)
        scattered = [r for g in outcome.groups for r in g.replacements]
        assert sorted(scattered) == sorted(figure2_candidates)

    def test_programs_consistent_with_members(self, figure2_candidates):
        for group in unsupervised_grouping(figure2_candidates).groups:
            for member in group.replacements:
                assert group.program.produces(member.lhs, member.rhs), (
                    f"{group.program.describe()} inconsistent with {member}"
                )

    def test_sorted_groups_descending(self, figure2_candidates):
        outcome = unsupervised_grouping(figure2_candidates)
        sizes = [g.size for g in outcome.sorted_groups()]
        assert sizes == sorted(sizes, reverse=True)

    def test_deterministic(self, figure2_candidates):
        a = unsupervised_grouping(figure2_candidates)
        b = unsupervised_grouping(figure2_candidates)
        assert [g.replacements for g in a.sorted_groups()] == [
            g.replacements for g in b.sorted_groups()
        ]

    def test_duplicates_collapse(self, figure2_candidates):
        outcome = unsupervised_grouping(figure2_candidates * 2)
        scattered = [r for g in outcome.groups for r in g.replacements]
        assert sorted(scattered) == sorted(figure2_candidates)


class TestConfigurations:
    def test_no_affix_splits_street_group(self):
        candidates = [Replacement("Street", "St"), Replacement("Avenue", "Ave")]
        with_affix = unsupervised_grouping(candidates)
        without = unsupervised_grouping(candidates, config=Config(use_affix=False))
        assert len(with_affix.groups) == 1
        assert len(without.groups) == 2  # no shared program without affix

    def test_no_structure_still_partitions(self, figure2_candidates):
        outcome = unsupervised_grouping(
            figure2_candidates, config=Config(use_structure=False)
        )
        scattered = [r for g in outcome.groups for r in g.replacements]
        assert sorted(scattered) == sorted(figure2_candidates)

    def test_structure_separates_shapes(self):
        # Same transformation family, different structure: kept apart
        # (Section 7.2 refinement).
        candidates = [
            Replacement("9th", "9"),
            Replacement("3rd", "3"),
            Replacement("Lee, Mary", "Mary Lee"),
        ]
        outcome = unsupervised_grouping(candidates)
        for group in outcome.groups:
            shapes = {
                (r.lhs.isdigit(), "," in r.lhs) for r in group.replacements
            }
            assert len(shapes) == 1

    def test_oneshot_equals_earlyterm_groups(self, figure2_candidates):
        """Figure 9's methods produce identical groups (Section 8.2)."""
        fast = unsupervised_grouping(figure2_candidates)
        slow = unsupervised_grouping(
            figure2_candidates, config=Config().without_early_termination()
        )
        assert _group_sets(fast.groups) == _group_sets(slow.groups)

    def test_empty_input(self):
        assert unsupervised_grouping([]).groups == []


class TestGroupHelpers:
    def test_singleton_group(self):
        r = Replacement("a" * 100, "b")
        g = singleton_group(r)
        assert g.size == 1 and g.replacements == (r,)
        assert g.program.produces(r.lhs, r.rhs)

    def test_group_sort_key_orders_by_size_desc(self):
        big = singleton_group(Replacement("a", "b"))
        bigger = Group(big.program, big.replacements * 2)
        assert group_sort_key(bigger) < group_sort_key(big)

    def test_describe_lists_members(self):
        g = singleton_group(Replacement("x", "y"))
        assert "'x' -> 'y'" in g.describe()
