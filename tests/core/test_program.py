"""Tests for transformation programs (Definition 5, Example B.3)."""

import pytest

from repro.core.functions import ConstantStr, Prefix, SubStr
from repro.core.positions import BEGIN, END, ConstPos, MatchPos
from repro.core.program import Program, make_program
from repro.core.terms import CAPITALS, LOWERCASE, WHITESPACE


@pytest.fixture
def paper_program():
    """The Figure 3 / Example B.3 program: f2 ⊕ f3 ⊕ f1."""
    f1 = SubStr(MatchPos(CAPITALS, 1, BEGIN), MatchPos(LOWERCASE, 1, END))
    f2 = SubStr(MatchPos(WHITESPACE, 1, END), MatchPos(CAPITALS, -1, END))
    f3 = ConstantStr(". ")
    return make_program([f2, f3, f1])


class TestEvaluate:
    def test_paper_example(self, paper_program):
        # rho("Lee, Mary") = "M. Lee" (Figure 4).
        assert paper_program.evaluate("Lee, Mary") == {"M. Lee"}

    def test_paper_example_generalizes(self, paper_program):
        # The same program transposes any "Last, First" name.
        assert paper_program.evaluate("Smith, James") == {"J. Smith"}

    def test_evaluate_unique(self, paper_program):
        assert paper_program.evaluate_unique("Lee, Mary") == "M. Lee"

    def test_failing_function_empties_output(self, paper_program):
        # No whitespace -> f2 fails -> no output at all.
        assert paper_program.evaluate("LeeMary") == set()

    def test_affix_multivalued(self):
        program = make_program([Prefix(LOWERCASE, 1)])
        assert program.evaluate("abc") == {"a", "ab"}

    def test_empty_program_produces_empty_string(self):
        assert make_program([]).evaluate("anything") == {""}


class TestProduces:
    def test_consistent_replacement(self, paper_program):
        assert paper_program.produces("Lee, Mary", "M. Lee")

    def test_inconsistent_replacement(self, paper_program):
        assert not paper_program.produces("Lee, Mary", "Mary Lee")

    def test_affix_consistency_appendix_d(self):
        # SubStr(capitals) ⊕ Prefix(Tl, 1) expresses both
        # Street -> St and Avenue -> Ave (Example D.1).
        program = make_program(
            [
                SubStr(MatchPos(CAPITALS, 1, BEGIN), MatchPos(CAPITALS, 1, END)),
                Prefix(LOWERCASE, 1),
            ]
        )
        assert program.produces("Street", "St")
        assert program.produces("Avenue", "Ave")
        assert not program.produces("Street", "Ave")

    def test_produces_requires_full_consumption(self):
        program = make_program([ConstantStr("M")])
        assert not program.produces("x", "M. Lee")
        assert program.produces("x", "M")


class TestProgramIdentity:
    def test_canonical_is_stable(self, paper_program):
        assert paper_program.canonical() == paper_program.canonical()

    def test_equality(self, paper_program):
        clone = Program(tuple(paper_program.functions))
        assert clone == paper_program

    def test_describe_mentions_every_function(self, paper_program):
        text = paper_program.describe()
        assert "ConstantStr" in text and "SubStr" in text

    def test_len_and_iter(self, paper_program):
        assert len(paper_program) == 3
        assert list(paper_program) == list(paper_program.functions)
