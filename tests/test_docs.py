"""The documentation cannot rot: links resolve, commands exist.

Two contracts over README.md and ``docs/*.md`` (both also run as the
CI ``docs`` job):

* every relative markdown link points at a file that exists (and, with
  a ``#fragment``, at a heading that exists in the target);
* every ``repro <subcommand>`` mentioned in code spans or fenced code
  blocks is a real CLI subcommand (``python -m repro <cmd> --help``
  exits 0).
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO / "README.md"] + list((REPO / "docs").glob("*.md"))
)

LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE_RE = re.compile(r"`([^`]+)`")
CLI_MENTION_RE = re.compile(
    # `repro <cmd>` / `python -m repro <cmd>`, but not `from repro
    # import ...` or `import repro` in library snippets.
    r"(?:^|[\s;($])(?<!from )(?<!import )(?:python -m )?"
    r"repro\s+([a-z][a-z0-9_-]*)"
)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    slug = heading.strip().lower().replace("`", "")
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def iter_links(markdown: str):
    for match in LINK_RE.finditer(markdown):
        target = match.group(2)
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
            continue
        yield target


def test_doc_suite_exists():
    """The documented entry points of the suite itself."""
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "paper-mapping.md").is_file()
    assert len(DOC_FILES) >= 3  # README + the two docs pages


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[str(d.relative_to(REPO)) for d in DOC_FILES]
)
def test_relative_links_resolve(doc):
    markdown = doc.read_text(encoding="utf-8")
    for target in iter_links(markdown):
        path_part, _, fragment = target.partition("#")
        resolved = (
            (doc.parent / path_part).resolve() if path_part else doc
        )
        assert resolved.exists(), (
            f"{doc.relative_to(REPO)}: broken link {target!r} "
            f"({resolved} does not exist)"
        )
        if fragment and resolved.suffix == ".md":
            headings = HEADING_RE.findall(
                resolved.read_text(encoding="utf-8")
            )
            slugs = {github_slug(h) for h in headings}
            assert fragment in slugs, (
                f"{doc.relative_to(REPO)}: link {target!r} names a "
                f"missing anchor (have: {sorted(slugs)})"
            )


def mentioned_subcommands():
    """Every ``repro <cmd>`` inside code spans / fenced blocks."""
    commands = set()
    for doc in DOC_FILES:
        markdown = doc.read_text(encoding="utf-8")
        snippets = FENCE_RE.findall(markdown)
        snippets += INLINE_CODE_RE.findall(FENCE_RE.sub("", markdown))
        for snippet in snippets:
            for match in CLI_MENTION_RE.finditer(snippet):
                commands.add(match.group(1))
    return sorted(commands)


def test_cli_mentions_are_real_subcommands():
    commands = mentioned_subcommands()
    # Guard against the extraction regex rotting into a no-op.
    assert {"stream", "apply", "learn"} <= set(commands), commands
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for command in commands:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", command, "--help"],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
            timeout=60,
        )
        assert proc.returncode == 0, (
            f"docs mention `repro {command}` but "
            f"`python -m repro {command} --help` failed:\n{proc.stderr}"
        )


def test_docs_mention_the_sharded_stream():
    """The quickstart teaches the current flagship flags."""
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "--shards" in readme
    assert "docs/architecture.md" in readme
    assert "docs/paper-mapping.md" in readme


#: Flags the docs teach for the LSH / shard-resident and multi-column
#: golden-record releases; each must appear in the documentation AND
#: be a real `repro stream` flag.
STREAM_FLAGS = (
    "--blocking",
    "--lsh-bands",
    "--lsh-rows",
    "--lsh-shingle",
    "--similarity-threshold",
    "--block-retention",
    "--stats",
    "--shards",
    "--columns",
    "--golden-out",
    "--fusion",
    "--metrics",
    "--trace",
    "--profile",
    "--question-order",
)


def test_documented_stream_flags_exist():
    """`repro stream --help` must offer every flag the docs teach, and
    the flagship ones must actually be taught somewhere."""
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "stream", "--help"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    for flag in STREAM_FLAGS:
        assert flag in proc.stdout, (
            f"documented flag {flag} missing from `repro stream --help`"
        )
    docs_text = "\n".join(
        doc.read_text(encoding="utf-8") for doc in DOC_FILES
    )
    for flag in (
        "--blocking",
        "--stats",
        "--block-retention",
        "--columns",
        "--golden-out",
    ):
        assert flag in docs_text, f"{flag} is undocumented"


def test_docs_cover_the_lsh_blocking_mode():
    arch = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "--blocking lsh" in arch
    assert "MinHash" in arch
    mapping = (REPO / "docs" / "paper-mapping.md").read_text(
        encoding="utf-8"
    )
    assert "lsh_keys" in mapping
    assert "Shard-resident" in mapping


def test_docs_cover_observability():
    """The observability release is taught where users will look."""
    obs_doc = REPO / "docs" / "observability.md"
    assert obs_doc.is_file()
    obs_text = obs_doc.read_text(encoding="utf-8")
    assert "--metrics" in obs_text and "--trace" in obs_text
    assert "repro stats --metrics" in obs_text
    # The documented row types match the validator's schema.
    from repro.obs.summary import ROW_TYPES

    for row_type in ROW_TYPES:
        assert f'"type": "{row_type}"' in obs_text, (
            f"row type {row_type!r} undocumented in observability.md"
        )
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "docs/observability.md" in readme
    arch = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "observability.md" in arch


def test_docs_cover_the_multi_column_golden_stream():
    """The multi-column release is taught where users will look."""
    arch = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "--columns" in arch
    assert "GoldenStreamConsolidator" in arch
    assert "ModelBundle" in arch
    mapping = (REPO / "docs" / "paper-mapping.md").read_text(
        encoding="utf-8"
    )
    assert "golden_stream" in mapping
    assert "test_golden_stream" in mapping
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "--columns" in readme and "--golden-out" in readme


def test_docs_cover_the_network_serving_tier():
    """The serving release is taught where users will look, and the
    documented flags are real `repro serve` flags."""
    serving = REPO / "docs" / "serving.md"
    assert serving.is_file()
    text = serving.read_text(encoding="utf-8")
    for needle in (
        "--listen",
        "--follow",
        "--ttl",
        "--golden-log",
        '"op": "subscribe"',
        '"push": "golden"',
        "exactly one reply",
        "serve.reload_errors",
        "FaultInjector",
    ):
        assert needle in text, f"{needle} undocumented in serving.md"
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--help"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    for flag in (
        "--listen",
        "--follow",
        "--bundle",
        "--ttl",
        "--poll-interval",
        "--golden-log",
        "--idle-timeout",
        "--max-request-bytes",
        "--metrics",
    ):
        assert flag in proc.stdout, (
            f"documented flag {flag} missing from `repro serve --help`"
        )
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "docs/serving.md" in readme and "--listen" in readme
    arch = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "serving.md" in arch and "TTLEngineCache" in arch


def test_docs_cover_the_oracle_scheduling_release():
    """Yield-ranked scheduling and the decisions tooling are taught
    where users will look, and the taught invocations are real."""
    sched = REPO / "docs" / "oracle-scheduling.md"
    assert sched.is_file()
    text = sched.read_text(encoding="utf-8")
    for needle in (
        "--question-order yield",
        "member_yield",
        '"source": "inferred"',
        "repro decisions audit",
        "repro decisions compact",
        "repro decisions diff",
        "oracle.questions_saved",
        "oracle.inferred_verdicts",
        "byte-identical",
    ):
        assert needle in text, f"{needle} undocumented in oracle-scheduling.md"
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "docs/oracle-scheduling.md" in readme
    assert "--question-order" in readme
    arch = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "--question-order yield" in arch
    assert "oracle-scheduling.md" in arch
    # The taught `repro decisions` subcommands parse.
    from repro.cli import build_parser

    parser = build_parser()
    for sub in ("compact", "diff", "audit"):
        args_by_sub = {
            "compact": ["decisions", "compact", "log.jsonl"],
            "diff": ["decisions", "diff", "a.jsonl", "b.jsonl"],
            "audit": ["decisions", "audit", "--json", "log.jsonl"],
        }
        assert parser.parse_args(args_by_sub[sub]).decisions_command == sub


def test_docs_cover_the_tracing_release():
    """Trace propagation, profiler, top, and bench gates are taught."""
    obs_text = (REPO / "docs" / "observability.md").read_text(
        encoding="utf-8"
    )
    for needle in (
        "--trace-tree",
        "--profile",
        "repro top",
        "repro bench check",
        "shard.resolve",
        "shard.match",
        "shard.derive",
        "parent_id",
    ):
        assert needle in obs_text, f"{needle} undocumented"
    arch = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert "--trace-tree" in arch
    assert "repro bench check" in arch
