"""Tests for golden-record creation and precision scoring."""

import pytest

from repro.data.table import CellRef, ClusterTable, Record
from repro.fusion import majority
from repro.pipeline.golden import entity_precision, golden_precision, golden_records


def table_of(*clusters, column="v"):
    table = ClusterTable([column])
    for ci, values in enumerate(clusters):
        table.add_cluster(
            f"c{ci}",
            [Record(f"r{ci}_{i}", {column: v}) for i, v in enumerate(values)],
        )
    return table


class TestGoldenRecords:
    def test_majority_per_cluster(self):
        table = table_of(["a", "a", "b"], ["x"])
        golden = golden_records(table, "v", majority.fuse)
        assert golden == {0: "a", 1: "x"}


class TestGoldenPrecision:
    def test_exact_match_scoring(self):
        golden = {0: "a", 1: "wrong"}
        truth = {0: "a", 1: "right"}
        assert golden_precision(golden, truth) == 0.5

    def test_missing_counts_as_wrong_by_default(self):
        assert golden_precision({0: None}, {0: "a"}) == 0.0

    def test_missing_can_be_skipped(self):
        golden = {0: None, 1: "b"}
        truth = {0: "a", 1: "b"}
        assert golden_precision(golden, truth, count_missing_as_wrong=False) == 1.0

    def test_empty_truth(self):
        assert golden_precision({}, {}) == 0.0


class TestEntityPrecision:
    def test_variant_surface_form_counts(self):
        """The paper's rule: a golden value in a variant rendering still
        refers to the same entity -> TP."""
        table = table_of(["J of Bio", "J of Bio"])
        canonical = {
            CellRef(0, 0, "v"): "Journal of Biology",
            CellRef(0, 1, "v"): "Journal of Biology",
        }
        golden = golden_records(table, "v", majority.fuse)
        truth = {0: "Journal of Biology"}
        assert entity_precision(table, "v", golden, canonical, truth) == 1.0
        # ... even though exact-string scoring would call it wrong:
        assert golden_precision(golden, truth) == 0.0

    def test_wrong_entity_does_not_count(self):
        table = table_of(["Annals of X", "Annals of X"])
        canonical = {
            CellRef(0, 0, "v"): "Annals of X",
            CellRef(0, 1, "v"): "Annals of X",
        }
        golden = golden_records(table, "v", majority.fuse)
        assert entity_precision(
            table, "v", golden, canonical, {0: "Journal of Y"}
        ) == 0.0

    def test_tie_counts_as_wrong(self):
        table = table_of(["a", "b"])
        canonical = {
            CellRef(0, 0, "v"): "a",
            CellRef(0, 1, "v"): "a",
        }
        golden = golden_records(table, "v", majority.fuse)  # tie -> None
        assert entity_precision(table, "v", golden, canonical, {0: "a"}) == 0.0

    def test_empty_truth(self):
        table = table_of(["a"])
        assert entity_precision(table, "v", {}, {}, {}) == 0.0
