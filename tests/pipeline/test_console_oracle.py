"""Tests for the interactive console oracle."""

import pytest

from repro.core.grouping import singleton_group
from repro.core.replacement import Replacement
from repro.pipeline.oracle import FORWARD, REVERSE, ConsoleOracle


def make_oracle(answer):
    printed = []
    oracle = ConsoleOracle(
        prompt_fn=lambda prompt: answer,
        print_fn=printed.append,
    )
    return oracle, printed


class TestConsoleOracle:
    def test_yes_approves_forward(self):
        oracle, _ = make_oracle("y")
        decision = oracle.review(singleton_group(Replacement("a", "b")))
        assert decision.approved and decision.direction == FORWARD

    def test_r_approves_reverse(self):
        oracle, _ = make_oracle("r")
        decision = oracle.review(singleton_group(Replacement("a", "b")))
        assert decision.approved and decision.direction == REVERSE

    def test_anything_else_rejects(self):
        for answer in ("n", "", "no", "q"):
            oracle, _ = make_oracle(answer)
            assert not oracle.review(
                singleton_group(Replacement("a", "b"))
            ).approved

    def test_whitespace_and_case_tolerated(self):
        oracle, _ = make_oracle("  Y ")
        assert oracle.review(singleton_group(Replacement("a", "b"))).approved

    def test_group_is_displayed(self):
        oracle, printed = make_oracle("y")
        oracle.review(singleton_group(Replacement("lhs-text", "rhs-text")))
        blob = "\n".join(printed)
        assert "lhs-text" in blob and "rhs-text" in blob
        assert "program" in blob

    def test_member_display_truncated(self):
        oracle, printed = make_oracle("n")
        from repro.core.grouping import Group
        from repro.core.program import Program
        from repro.core.functions import ConstantStr

        members = tuple(Replacement(f"a{i}", "b") for i in range(20))
        oracle.members_shown = 3
        oracle.review(Group(Program((ConstantStr("b"),)), members))
        blob = "\n".join(printed)
        assert "... and 17 more" in blob

    def test_counters(self):
        oracle, _ = make_oracle("y")
        oracle.review(singleton_group(Replacement("a", "b")))
        oracle.review(singleton_group(Replacement("c", "d")))
        assert oracle.reviewed == 2 and oracle.approved == 2


class TestClosedInput:
    """A closed stdin must not crash the batch mid-review: the oracle
    rejects the group at hand and every later one, warning exactly
    once, so the run finishes with the verdicts it already has."""

    @pytest.mark.parametrize("exc", [EOFError, KeyboardInterrupt])
    def test_prompt_failure_rejects_instead_of_crashing(self, exc):
        def raise_it(prompt):
            raise exc()

        printed = []
        oracle = ConsoleOracle(prompt_fn=raise_it, print_fn=printed.append)
        decision = oracle.review(singleton_group(Replacement("a", "b")))
        assert not decision.approved
        assert decision.direction == FORWARD
        assert oracle.closed

    def test_warns_once_then_rejects_silently(self):
        def raise_eof(prompt):
            raise EOFError()

        printed = []
        oracle = ConsoleOracle(prompt_fn=raise_eof, print_fn=printed.append)
        oracle.review(singleton_group(Replacement("a", "b")))
        after_first = len(printed)
        warnings = [line for line in printed if "warning" in line]
        assert len(warnings) == 1
        assert "console input closed" in warnings[0]
        # Later reviews reject without prompting *or* printing: no
        # group display, no second warning.
        oracle.review(singleton_group(Replacement("c", "d")))
        oracle.review(singleton_group(Replacement("e", "f")))
        assert len(printed) == after_first
        assert oracle.reviewed == 3 and oracle.approved == 0

    def test_answers_before_eof_are_kept(self):
        answers = iter(["y"])

        def prompt(prompt_text):
            try:
                return next(answers)
            except StopIteration:
                raise EOFError()

        oracle = ConsoleOracle(prompt_fn=prompt, print_fn=lambda _: None)
        first = oracle.review(singleton_group(Replacement("a", "b")))
        second = oracle.review(singleton_group(Replacement("c", "d")))
        assert first.approved and not second.approved
        assert oracle.approved == 1
