"""Tests for the interactive console oracle."""

import pytest

from repro.core.grouping import singleton_group
from repro.core.replacement import Replacement
from repro.pipeline.oracle import FORWARD, REVERSE, ConsoleOracle


def make_oracle(answer):
    printed = []
    oracle = ConsoleOracle(
        prompt_fn=lambda prompt: answer,
        print_fn=printed.append,
    )
    return oracle, printed


class TestConsoleOracle:
    def test_yes_approves_forward(self):
        oracle, _ = make_oracle("y")
        decision = oracle.review(singleton_group(Replacement("a", "b")))
        assert decision.approved and decision.direction == FORWARD

    def test_r_approves_reverse(self):
        oracle, _ = make_oracle("r")
        decision = oracle.review(singleton_group(Replacement("a", "b")))
        assert decision.approved and decision.direction == REVERSE

    def test_anything_else_rejects(self):
        for answer in ("n", "", "no", "q"):
            oracle, _ = make_oracle(answer)
            assert not oracle.review(
                singleton_group(Replacement("a", "b"))
            ).approved

    def test_whitespace_and_case_tolerated(self):
        oracle, _ = make_oracle("  Y ")
        assert oracle.review(singleton_group(Replacement("a", "b"))).approved

    def test_group_is_displayed(self):
        oracle, printed = make_oracle("y")
        oracle.review(singleton_group(Replacement("lhs-text", "rhs-text")))
        blob = "\n".join(printed)
        assert "lhs-text" in blob and "rhs-text" in blob
        assert "program" in blob

    def test_member_display_truncated(self):
        oracle, printed = make_oracle("n")
        from repro.core.grouping import Group
        from repro.core.program import Program
        from repro.core.functions import ConstantStr

        members = tuple(Replacement(f"a{i}", "b") for i in range(20))
        oracle.members_shown = 3
        oracle.review(Group(Program((ConstantStr("b"),)), members))
        blob = "\n".join(printed)
        assert "... and 17 more" in blob

    def test_counters(self):
        oracle, _ = make_oracle("y")
        oracle.review(singleton_group(Replacement("a", "b")))
        oracle.review(singleton_group(Replacement("c", "d")))
        assert oracle.reviewed == 2 and oracle.approved == 2
