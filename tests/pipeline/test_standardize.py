"""Tests for the human-in-the-loop standardization loop (Algorithm 1)."""

import pytest

from repro.config import Config
from repro.data.table import CellRef, ClusterTable, Record
from repro.pipeline.oracle import (
    ApproveAllOracle,
    GroundTruthOracle,
    RejectAllOracle,
)
from repro.pipeline.standardize import Standardizer


def paper_table():
    table = ClusterTable(["name"])
    table.add_cluster(
        "C1",
        [
            Record("r1", {"name": "Mary Lee"}),
            Record("r2", {"name": "M. Lee"}),
            Record("r3", {"name": "Lee, Mary"}),
        ],
    )
    table.add_cluster(
        "C2",
        [
            Record("r4", {"name": "Smith, James"}),
            Record("r5", {"name": "James Smith"}),
            Record("r6", {"name": "J. Smith"}),
        ],
    )
    return table


def paper_canonical():
    canon = {}
    for ri in range(3):
        canon[CellRef(0, ri, "name")] = "Mary Lee"
        canon[CellRef(1, ri, "name")] = "James Smith"
    return canon


class TestRun:
    def test_approve_all_harmonizes_clusters(self):
        table = paper_table()
        standardizer = Standardizer(table, "name")
        log = standardizer.run(ApproveAllOracle(), budget=20)
        assert log.groups_approved > 0
        # Each cluster collapses to a single representation (Table 2).
        for ci in range(table.num_clusters):
            assert len(set(table.cluster_values(ci, "name"))) == 1

    def test_reject_all_changes_nothing(self):
        table = paper_table()
        before = table.column_values("name")
        standardizer = Standardizer(table, "name")
        log = standardizer.run(RejectAllOracle(), budget=20)
        assert log.groups_approved == 0
        assert table.column_values("name") == before

    def test_ground_truth_oracle_moves_toward_canonical(self):
        table = paper_table()
        standardizer = Standardizer(table, "name")
        oracle = GroundTruthOracle(paper_canonical(), standardizer.store)
        standardizer.run(oracle, budget=20)
        assert set(table.cluster_values(0, "name")) == {"Mary Lee"}
        assert set(table.cluster_values(1, "name")) == {"James Smith"}

    def test_budget_respected(self):
        table = paper_table()
        standardizer = Standardizer(table, "name")
        log = standardizer.run(ApproveAllOracle(), budget=2)
        assert log.groups_confirmed == 2

    def test_zero_budget(self):
        table = paper_table()
        standardizer = Standardizer(table, "name")
        log = standardizer.run(ApproveAllOracle(), budget=0)
        assert log.groups_confirmed == 0

    def test_after_step_callback_fires_per_group(self):
        table = paper_table()
        standardizer = Standardizer(table, "name")
        steps = []
        log = standardizer.run(
            ApproveAllOracle(), budget=5, after_step=steps.append
        )
        # One callback per presented group (the feed may exhaust early
        # once applications retire the remaining candidates).
        assert len(steps) == log.groups_confirmed >= 1
        assert [s.index for s in steps] == list(range(len(steps)))

    def test_log_counts(self):
        table = paper_table()
        standardizer = Standardizer(table, "name")
        log = standardizer.run(ApproveAllOracle(), budget=6)
        assert log.groups_confirmed >= log.groups_approved
        assert log.cells_changed >= 1


class TestFeedInteraction:
    def test_feed_exhaustion_stops_early(self):
        table = ClusterTable(["v"])
        table.add_cluster("c", [Record("a", {"v": "x"}), Record("b", {"v": "y"})])
        standardizer = Standardizer(table, "v")
        log = standardizer.run(ApproveAllOracle(), budget=100)
        assert log.groups_confirmed < 100

    def test_dead_candidates_not_re_presented(self):
        """Applying a group must retire candidates invalidated by the
        update (Section 7.1) before the next group is drawn."""
        table = paper_table()
        standardizer = Standardizer(table, "name")
        seen = []
        standardizer.run(
            ApproveAllOracle(),
            budget=30,
            after_step=lambda s: seen.extend(s.group.replacements),
        )
        # No replacement may be presented twice.
        assert len(seen) == len(set(seen))
