"""Tests for the multi-column Algorithm 1 pipeline."""

import pytest

from repro.data.table import CellRef, ClusterTable, Record
from repro.fusion import majority
from repro.pipeline.consolidate import GoldenRecordCreation
from repro.pipeline.oracle import ApproveAllOracle, GroundTruthOracle


def two_column_table():
    """Table 1 of the paper: Name and Address columns."""
    table = ClusterTable(["name", "address"])
    table.add_cluster(
        "C1",
        [
            Record("r1", {"name": "Mary Lee", "address": "9 St, 02141 Wisconsin"}),
            Record("r2", {"name": "M. Lee", "address": "9th St, 02141 WI"}),
            Record("r3", {"name": "Lee, Mary", "address": "9th Street, 02141 WI"}),
        ],
    )
    table.add_cluster(
        "C2",
        [
            Record("r4", {"name": "Smith, James", "address": "5th St, 22701 California"}),
            Record("r5", {"name": "James Smith", "address": "3rd E Ave, 33990 California"}),
            Record("r6", {"name": "J. Smith", "address": "3 E Avenue, 33990 CA"}),
        ],
    )
    return table


class TestGoldenRecordCreation:
    def test_processes_every_column(self):
        table = two_column_table()
        pipeline = GoldenRecordCreation(
            table, lambda s: ApproveAllOracle(), budget_per_column=20
        )
        report = pipeline.run()
        assert set(report.logs) == {"name", "address"}

    def test_golden_record_per_cluster(self):
        table = two_column_table()
        pipeline = GoldenRecordCreation(
            table, lambda s: ApproveAllOracle(), budget_per_column=20
        )
        report = pipeline.run()
        assert len(report.golden) == 2
        assert report.golden[0].key == "C1"
        assert set(report.golden[0].values) == {"name", "address"}

    def test_name_column_harmonized(self):
        table = two_column_table()
        pipeline = GoldenRecordCreation(
            table, lambda s: ApproveAllOracle(), budget_per_column=20
        )
        report = pipeline.run()
        # After standardization each cluster's names agree, so MC
        # produces a golden name (Tables 2-3 of the paper).
        assert report.golden[0].values["name"] is not None
        assert report.golden[1].values["name"] is not None

    def test_column_subset(self):
        table = two_column_table()
        pipeline = GoldenRecordCreation(
            table,
            lambda s: ApproveAllOracle(),
            budget_per_column=10,
            columns=["name"],
        )
        report = pipeline.run()
        assert set(report.logs) == {"name"}
        assert set(report.golden[0].values) == {"name"}

    def test_ground_truth_oracle_factory(self):
        table = two_column_table()
        canonical = {}
        for ci, name in ((0, "Mary Lee"), (1, "James Smith")):
            for ri in range(3):
                canonical[CellRef(ci, ri, "name")] = name

        def factory(standardizer):
            return GroundTruthOracle(canonical, standardizer.store)

        pipeline = GoldenRecordCreation(
            table, factory, budget_per_column=20, columns=["name"]
        )
        report = pipeline.run()
        assert report.golden[0].values["name"] == "Mary Lee"
        assert report.golden[1].values["name"] == "James Smith"

    def test_report_aggregates(self):
        table = two_column_table()
        pipeline = GoldenRecordCreation(
            table, lambda s: ApproveAllOracle(), budget_per_column=20
        )
        report = pipeline.run()
        assert report.groups_confirmed >= 2
        assert report.cells_changed >= 2

    def test_custom_fusion(self):
        from repro.fusion import truthfinder

        table = two_column_table()
        pipeline = GoldenRecordCreation(
            table,
            lambda s: ApproveAllOracle(),
            budget_per_column=10,
            fusion=truthfinder.fuse,
            columns=["name"],
        )
        report = pipeline.run()
        assert report.golden[0].values["name"] is not None
