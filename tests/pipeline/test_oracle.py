"""Tests for the simulated human oracles (Section 3, Step 3)."""

import pytest

from repro.candidates.generate import generate_candidates
from repro.core.grouping import Group, singleton_group
from repro.core.program import Program
from repro.core.functions import ConstantStr
from repro.core.replacement import Replacement
from repro.data.table import CellRef, ClusterTable, Record
from repro.pipeline.oracle import (
    ApproveAllOracle,
    FORWARD,
    GroundTruthOracle,
    REVERSE,
    RejectAllOracle,
)


def make_dataset():
    """A cluster with two variants of one name plus one conflict."""
    table = ClusterTable(["name"])
    table.add_cluster(
        "c0",
        [
            Record("r0", {"name": "Mary Lee"}),
            Record("r1", {"name": "Lee, Mary"}),
            Record("r2", {"name": "Bob Stone"}),  # conflicting entity
        ],
    )
    canonical = {
        CellRef(0, 0, "name"): "Mary Lee",
        CellRef(0, 1, "name"): "Mary Lee",
        CellRef(0, 2, "name"): "Bob Stone",
    }
    store = generate_candidates(table, "name")
    return table, canonical, store


def group_of(*replacements):
    return Group(
        Program((ConstantStr("x"),)), tuple(replacements)
    )


class TestTrivialOracles:
    def test_approve_all(self):
        decision = ApproveAllOracle().review(group_of(Replacement("a", "b")))
        assert decision.approved and decision.direction == FORWARD

    def test_reject_all(self):
        assert not RejectAllOracle().review(group_of(Replacement("a", "b"))).approved


class TestGroundTruthOracle:
    def test_variant_group_approved(self):
        _, canonical, store = make_dataset()
        oracle = GroundTruthOracle(canonical, store)
        decision = oracle.review(group_of(Replacement("Lee, Mary", "Mary Lee")))
        assert decision.approved

    def test_conflict_group_rejected(self):
        _, canonical, store = make_dataset()
        oracle = GroundTruthOracle(canonical, store)
        decision = oracle.review(group_of(Replacement("Bob Stone", "Mary Lee")))
        assert not decision.approved

    def test_mixed_group_majority_decides(self):
        _, canonical, store = make_dataset()
        oracle = GroundTruthOracle(canonical, store)
        # One variant member + one conflict member: 50% is not a majority.
        decision = oracle.review(
            group_of(
                Replacement("Lee, Mary", "Mary Lee"),
                Replacement("Bob Stone", "Mary Lee"),
            )
        )
        assert not decision.approved

    def test_direction_toward_canonical(self):
        _, canonical, store = make_dataset()
        oracle = GroundTruthOracle(canonical, store)
        # rhs ("Mary Lee") is the canonical side -> forward.
        forward = oracle.review(group_of(Replacement("Lee, Mary", "Mary Lee")))
        assert forward.direction == FORWARD
        # lhs is the canonical side -> reverse.
        reverse = oracle.review(group_of(Replacement("Mary Lee", "Lee, Mary")))
        assert reverse.direction == REVERSE

    def test_unknown_replacement_rejected(self):
        _, canonical, store = make_dataset()
        oracle = GroundTruthOracle(canonical, store)
        decision = oracle.review(group_of(Replacement("zzz", "qqq")))
        assert not decision.approved  # no provenance, no votes

    def test_error_injection_flips_decisions(self):
        _, canonical, store = make_dataset()
        noisy = GroundTruthOracle(canonical, store, error_rate=1.0, seed=1)
        decision = noisy.review(group_of(Replacement("Lee, Mary", "Mary Lee")))
        assert not decision.approved  # flipped by injected error

    def test_counts_tracked(self):
        _, canonical, store = make_dataset()
        oracle = GroundTruthOracle(canonical, store)
        oracle.review(group_of(Replacement("Lee, Mary", "Mary Lee")))
        oracle.review(group_of(Replacement("Bob Stone", "Mary Lee")))
        assert oracle.reviewed == 2
        assert oracle.approved == 1

    def test_token_level_judgment(self):
        table = ClusterTable(["address"])
        table.add_cluster(
            "c0",
            [
                Record("r0", {"address": "9 St, 02141 Wisconsin"}),
                Record("r1", {"address": "9th St, 02141 WI"}),
            ],
        )
        canon = "9th St, 02141 WI"
        canonical = {
            CellRef(0, 0, "address"): canon,
            CellRef(0, 1, "address"): canon,
        }
        store = generate_candidates(table, "address")
        oracle = GroundTruthOracle(canonical, store)
        # Both directions describe the same variant pair; the oracle
        # approves each and picks the direction toward the canonical
        # side ("WI").
        forward = oracle.review(group_of(Replacement("Wisconsin", "WI")))
        assert forward.approved and forward.direction == FORWARD
        reverse = oracle.review(group_of(Replacement("WI", "Wisconsin")))
        assert reverse.approved and reverse.direction == REVERSE
