"""Observability overhead: near-free when off, bounded when on.

The observability layer's core design constraint is that an
*uninstrumented* run pays almost nothing: every hot-path hook is one
``obs.enabled`` check against the shared no-op ``NULL_OBS`` context.
This benchmark pins that claim on the apply-throughput workload —
the hottest loop the repository has:

* **disabled** — the per-call hook cost under ``NULL_OBS`` (exactly
  the sequence ``ApplyEngine.apply_values`` executes when nobody is
  observing), measured directly and expressed as a fraction of the
  real per-call apply time.  Asserted **< 5%**.
* **enabled** — the same workload with a live registry attached
  (counter mirroring + one latency observation per call).  Recorded
  to the results trajectory, not asserted: the enabled cost is a
  price the operator opted into.
"""

import time

from repro.datagen import address_dataset
from repro.obs import NULL_OBS, Obs
from repro.pipeline.oracle import GroundTruthOracle
from repro.pipeline.standardize import Standardizer
from repro.serve import ApplyEngine, build_model

from conftest import (
    BASE_SCALES,
    RESULTS_DIR,
    SCALE,
    load_results,
    print_banner,
    record_result,
    report,
)

SEED = 13
#: Reduced learn slice: learning is setup here, not the measurement.
LEARN_FACTOR = 0.35
LEARN_BUDGET = 40
#: Replication factor for a steady-state batch per apply call.
REPLICAS = 20
#: Timed apply calls per variant (median taken).
REPEATS = 7
#: Iterations of the micro-benchmarked disabled hook.
HOOK_ITERATIONS = 200_000

#: The acceptance bound: disabled instrumentation under 5% of the
#: apply-throughput workload.
MAX_DISABLED_OVERHEAD = 0.05


def _learn_model():
    dataset = address_dataset(
        scale=BASE_SCALES["Address"] * SCALE * LEARN_FACTOR, seed=SEED
    )
    table = dataset.fresh_table()
    standardizer = Standardizer(table, dataset.column)
    oracle = GroundTruthOracle(
        dataset.canonical, standardizer.store, seed=SEED
    )
    log = standardizer.run(oracle, LEARN_BUDGET)
    model = build_model(
        log,
        dataset.column,
        name="obs-overhead",
        config=standardizer.config,
        vocabulary=standardizer.vocabulary,
    )
    values = [
        record.values.get(dataset.column, "")
        for cluster in dataset.fresh_table().clusters
        for record in cluster.records
    ]
    return model, values * REPLICAS


def _median_apply_seconds(engine, values):
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        engine.apply_values(values)
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def _disabled_hook_seconds_per_call():
    """The exact disabled-path hook sequence of one ``apply_values``
    call: two ``obs.enabled`` branches (skip timing, skip sync)."""
    obs = NULL_OBS
    start = time.perf_counter()
    for _ in range(HOOK_ITERATIONS):
        started = time.perf_counter() if obs.enabled else 0.0
        if obs.enabled:
            raise AssertionError(started)  # pragma: no cover
    return (time.perf_counter() - start) / HOOK_ITERATIONS


def test_disabled_overhead_under_5_percent():
    model, values = _learn_model()

    baseline = ApplyEngine(model)  # obs defaults to NULL_OBS
    t_disabled = _median_apply_seconds(baseline, values)

    obs = Obs()
    instrumented = ApplyEngine(model, obs=obs)
    t_enabled = _median_apply_seconds(instrumented, values)

    hook = _disabled_hook_seconds_per_call()
    disabled_overhead = hook / t_disabled
    enabled_overhead = t_enabled / t_disabled - 1.0

    rows = len(values)
    print_banner("observability overhead (apply-throughput workload)")
    report(f"rows per apply call:        {rows}")
    report(f"apply (obs disabled):       {t_disabled * 1e3:9.3f} ms/call")
    report(f"apply (obs enabled):        {t_enabled * 1e3:9.3f} ms/call")
    report(f"disabled hook cost:         {hook * 1e9:9.1f} ns/call")
    report(
        f"disabled overhead:          {disabled_overhead:9.6%}"
        f"  (bound {MAX_DISABLED_OVERHEAD:.0%})"
    )
    report(f"enabled overhead:           {enabled_overhead:9.2%} (recorded)")

    record_result(
        "obs_overhead",
        rows=rows,
        disabled_seconds=round(t_disabled, 6),
        enabled_seconds=round(t_enabled, 6),
        hook_seconds_per_call=hook,
        disabled_overhead=round(disabled_overhead, 8),
        enabled_overhead=round(enabled_overhead, 6),
    )

    # The acceptance bound: uninstrumented runs are near-free.
    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled observability hook costs {disabled_overhead:.4%} of "
        f"an apply call (bound {MAX_DISABLED_OVERHEAD:.0%})"
    )
    # Sanity on the enabled side: counters actually accumulated.
    snap = obs.metrics.snapshot()
    assert snap["apply.rows"] == rows * REPEATS
    assert snap["apply.batch_seconds"]["count"] == REPEATS


def test_result_rows_are_stamped_and_backfill_readable():
    """Recorded rows carry run provenance (git SHA, interpreter, CPU
    count), and :func:`load_results` reads trajectories across schema
    generations: pre-stamping rows backfill as ``None``, corrupt lines
    are skipped."""
    bench = "results_reader_selftest"
    path = RESULTS_DIR / f"BENCH_{bench}.json"
    try:
        row = record_result(bench, marker=1)
        assert "git" in row and "cpus" in row and "python" in row
        assert row["cpus"] == (None if row["cpus"] is None else row["cpus"])
        # A legacy row (recorded before the provenance fields existed)
        # and a torn tail, as a killed run would leave them:
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"bench": "%s", "marker": 2}\n' % bench)
            handle.write('{"bench": "%s", "mar' % bench)
        rows = load_results(bench)
        assert [r.get("marker") for r in rows] == [1, 2]
        assert rows[0]["git"] == row["git"]
        # Backfilled: the legacy row exposes the current schema.
        assert rows[1]["git"] is None
        assert rows[1]["cpus"] is None
        assert rows[1]["python"] is None
        assert load_results("no_such_bench_ever") == []
    finally:
        path.unlink(missing_ok=True)
