"""Ablation — structure refinement (Section 7.2).

The paper motivates structure pre-partitioning twice: groups become
syntactically coherent for the reviewer, and the incremental grouper
can seed upper bounds with structure-group sizes, deferring graph
construction.  This ablation measures both effects: time to the first
k groups and the total number of pivot searches, with structure
refinement on vs off.
"""

import time

import pytest

from repro.config import Config
from repro.core.incremental import IncrementalGrouper
from repro.datagen import address_dataset
from repro.evaluation import format_table
from repro.pipeline.standardize import Standardizer

from conftest import print_banner, report

K_GROUPS = 15


def _run(config, replacements):
    grouper = IncrementalGrouper(replacements, config=config)
    start = time.perf_counter()
    groups = list(grouper.groups(limit=K_GROUPS))
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "groups": len(groups),
        "largest": groups[0].size if groups else 0,
        "searches": grouper.stats.searches,
        "expansions": grouper.stats.expansions,
    }


def _measure():
    dataset = address_dataset(scale=0.12)
    standardizer = Standardizer(dataset.fresh_table(), dataset.column)
    replacements = standardizer.store.replacements()
    with_structure = _run(Config(use_structure=True), replacements)
    without = _run(Config(use_structure=False), replacements)
    return replacements, with_structure, without


def test_ablation_structure_refinement(benchmark):
    replacements, with_structure, without = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    print_banner(
        f"Ablation: structure refinement (Section 7.2) — "
        f"{len(replacements)} candidates, first {K_GROUPS} groups"
    )
    report(
        format_table(
            ("setting", "seconds", "groups", "largest", "searches", "expansions"),
            [
                ("structure", *with_structure.values()),
                ("no structure", *without.values()),
            ],
        )
    )
    # Structure refinement must not lose groups and should need far
    # fewer DFS expansions (it searches within small buckets).
    assert with_structure["groups"] == without["groups"] == K_GROUPS
    assert with_structure["expansions"] <= without["expansions"]
