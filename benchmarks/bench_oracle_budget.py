"""Oracle budget efficiency: yield-ranked scheduling vs discovery order.

The oracle is the expensive resource; the scheduler's whole point
(``--question-order yield``, ``stream/scheduler.py``) is to buy more
standardization per question.  This bench runs the same multi-column
golden stream under three regimes and pins the payoff from two sides:

* **equal budget** — given exactly discovery's budget, yield ranking
  repairs **at least as many cells in every column** (and strictly
  more overall): reordering the questions is free quality;
* **70 % budget** — given only ``int(0.7 × budget)`` per column, the
  pooled/yield run asks **≤ 70 %** of discovery's questions yet still
  repairs **at least as many cells in aggregate** — equal
  standardization quality for 30 % less human attention;
* **sharded** — the 70 %-budget yield run at ``shards=2`` publishes a
  **byte-identical** bundle and asks identical per-column questions:
  the scheduler is parent-resident, so the shard-invariance guarantee
  survives it.

Quality is the exhaustive values-fixed measure (cells whose value
equals the ground-truth canonical string of the record's entity — no
sampling), so runs compare exactly.  Every constant below is pinned —
including the cluster count, which deliberately ignores the bench
``SCALE`` — because the assertions compare two deterministic runs of
one seeded stream, not a statistical trend; rescaling the stream would
change which groups exist, not what the comparison means.

Reported series (gated by ``repro bench check``):
``oracle_questions`` (lower is better at equal quality) and
``questions_saved_ratio`` (higher is better).
"""

import json

import pytest

from repro.data.table import CellRef
from repro.datagen.stream import golden_stream
from repro.stream import (
    GoldenStreamConsolidator,
    golden_ground_truth_oracle_factory,
)

from conftest import print_banner, record_result, report

N_CLUSTERS = 96
N_BATCHES = 4
#: Discovery's per-column per-batch budget.  Deliberately binding
#: (the stream carries more judgeable variation than the budget can
#: cover): an unbinding budget would let *any* order reach every
#: group and the comparison would measure nothing.
BUDGET = 10
YIELD_FRACTION = 0.7
SEED = 34


@pytest.fixture(scope="module")
def stream():
    return golden_stream(
        batches=N_BATCHES,
        n_clusters=N_CLUSTERS,
        mean_cluster_size=5.0,
        conflict_rate=0.0,
        variant_rate=0.8,
        seed=SEED,
        shuffle=False,
    )


def run_stream(stream, question_order, budget, shards=1):
    consolidator = GoldenStreamConsolidator(
        columns=stream.columns,
        oracle_factory=golden_ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=SEED
        ),
        key_attribute=stream.key_column,
        budget_per_batch=budget,
        persist_decisions=False,
        use_engine=False,
        shards=shards,
        shard_processes=False,
        question_order=question_order,
    )
    with consolidator:
        reports = consolidator.run(stream.batches)
    return consolidator, reports


def cells_correct(consolidator, stream):
    """Per column: cells whose value equals the ground-truth canonical
    string of the record's entity (the values-fixed measure)."""
    table = consolidator.resolver.table
    correct = {}
    for column in stream.columns:
        by_rid = stream.canonical_by_rid[column]
        n = 0
        for ci, cluster in enumerate(table.clusters):
            for ri, record in enumerate(cluster.records):
                canon = by_rid.get(record.rid)
                if canon is None:
                    continue
                if table.value(CellRef(ci, ri, column)) == canon:
                    n += 1
        correct[column] = n
    return correct


@pytest.fixture(scope="module")
def discovery(stream):
    consolidator, _ = run_stream(stream, "discovery", BUDGET)
    return consolidator, cells_correct(consolidator, stream)


def test_equal_budget_yield_dominates_per_column(stream, discovery):
    baseline, quality_discovery = discovery
    ranked, _ = run_stream(stream, "yield", BUDGET)
    quality_yield = cells_correct(ranked, stream)

    print_banner("Oracle budget: yield vs discovery at EQUAL budget")
    report(
        f"stream: {stream.num_records} records, "
        f"{len(stream.columns)} columns, {N_BATCHES} batches, "
        f"{N_CLUSTERS} entities; budget {BUDGET}/column/batch"
    )
    for column in stream.columns:
        report(
            f"  {column}: {quality_yield[column]} vs "
            f"{quality_discovery[column]} cells canonical "
            f"(yield vs discovery)"
        )

    assert ranked.questions_asked == baseline.questions_asked, (
        "equal binding budgets must spend the same number of questions"
    )
    for column in stream.columns:
        assert quality_yield[column] >= quality_discovery[column], (
            f"{column}: at equal budget, yield ranking repaired fewer "
            f"cells ({quality_yield[column]} < "
            f"{quality_discovery[column]})"
        )
    assert sum(quality_yield.values()) > sum(quality_discovery.values()), (
        "at equal budget, yield ranking must repair strictly more "
        "cells overall"
    )


def test_yield_order_equal_quality_fewer_questions(stream, discovery):
    baseline, quality_discovery = discovery
    yield_budget = int(YIELD_FRACTION * BUDGET)
    ranked, _ = run_stream(stream, "yield", yield_budget)

    q_discovery = baseline.questions_asked
    q_yield = ranked.questions_asked
    quality_yield = cells_correct(ranked, stream)

    print_banner(
        "Oracle budget: yield at 70% budget vs discovery at full budget"
    )
    report(
        f"discovery: {q_discovery} questions "
        f"(budget {BUDGET}/column/batch), "
        f"saved {baseline.questions_saved}, "
        f"{sum(quality_discovery.values())} cells canonical"
    )
    report(
        f"yield    : {q_yield} questions "
        f"(budget {yield_budget}/column/batch pooled), "
        f"saved {ranked.questions_saved}, "
        f"inferred {ranked.inferred_verdicts}, "
        f"{sum(quality_yield.values())} cells canonical"
    )
    for column in stream.columns:
        report(
            f"  {column}: {quality_yield[column]} vs "
            f"{quality_discovery[column]} cells canonical "
            f"(yield vs discovery)"
        )

    saved_ratio = ranked.questions_saved / max(
        1, ranked.questions_saved + q_yield
    )
    record_result(
        "oracle_budget",
        comparison="yield_vs_discovery",
        records=stream.num_records,
        columns=len(stream.columns),
        batches=N_BATCHES,
        discovery_questions=q_discovery,
        oracle_questions=q_yield,
        cells_correct_discovery=sum(quality_discovery.values()),
        cells_correct_yield=sum(quality_yield.values()),
        inferred_verdicts=ranked.inferred_verdicts,
        questions_saved_ratio=round(saved_ratio, 4),
    )

    assert q_yield <= YIELD_FRACTION * q_discovery, (
        f"yield scheduling must need <= {YIELD_FRACTION:.0%} of "
        f"discovery's questions (got {q_yield} vs {q_discovery})"
    )
    assert sum(quality_yield.values()) >= sum(quality_discovery.values()), (
        f"yield at {YIELD_FRACTION:.0%} budget must repair at least "
        f"as many cells as discovery at full budget "
        f"({sum(quality_yield.values())} < "
        f"{sum(quality_discovery.values())})"
    )


def canonical_bundle_bytes(consolidator):
    """The bundle as canonical JSON with wall-clock stamps zeroed —
    ``created_at`` records *when* a bundle was built, not *what* was
    learned, so it is the one field allowed to differ between runs."""
    payload = consolidator.build_bundle().to_dict()
    payload["created_at"] = 0.0
    for model in payload.get("models", {}).values():
        model["created_at"] = 0.0
    return json.dumps(payload, sort_keys=True)


def test_sharded_yield_is_byte_identical(stream):
    yield_budget = int(YIELD_FRACTION * BUDGET)
    unsharded, r1 = run_stream(stream, "yield", yield_budget, shards=1)
    sharded, r2 = run_stream(stream, "yield", yield_budget, shards=2)
    questions_1 = [dict(r.questions_by_column) for r in r1]
    questions_2 = [dict(r.questions_by_column) for r in r2]
    assert questions_1 == questions_2
    assert canonical_bundle_bytes(unsharded) == canonical_bundle_bytes(
        sharded
    ), "sharded yield-mode run must publish a byte-identical bundle"
    report("sharded yield run byte-identical at shards=2: OK")
