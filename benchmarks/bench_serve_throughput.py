"""Network serving tier throughput under concurrent load + hot reload.

The claim under test: the asyncio serving tier sustains real
concurrent traffic — many clients pipelining batch applies — *while a
new model version is published and hot-swapped mid-run*, without
dropping or corrupting a single request.  Measured on one in-process
server (no network stack noise beyond loopback):

* ``requests_per_second`` — completed request/reply round trips per
  second across all clients;
* ``rows_per_second`` — standardized values per second (each request
  carries a batch);
* the mid-run publish must actually swap (both versions observed) and
  every reply must byte-match the offline engine of the version it
  claims — throughput that breaks correctness does not count.

The absolute floor is asserted only when
``REPRO_BENCH_ASSERT_SPEEDUP`` is on (default), mirroring the other
gates; the recorded trajectory feeds ``repro bench check``.
"""

import asyncio
import json
import os
import time

import pytest

from repro.datagen import address_dataset
from repro.pipeline.oracle import GroundTruthOracle
from repro.pipeline.standardize import Standardizer
from repro.serve import (
    ApplyEngine,
    ModelRegistry,
    ModelSource,
    ServeServer,
    TransformationModel,
    build_model,
)

from conftest import (
    BASE_SCALES,
    BUDGETS,
    SCALE,
    print_banner,
    record_result,
    report,
    synthetic_exact_model,
)

ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP", "1") != "0"

SEED = 13
CLIENTS = 8
REQUESTS_PER_CLIENT = 40
BATCH_VALUES = 64
#: Conservative absolute floor — loopback asyncio round trips with a
#: compiled-engine apply per request run far above this everywhere.
MIN_REQUESTS_PER_SECOND = 100.0


@pytest.fixture(scope="module")
def serve_model():
    dataset = address_dataset(
        scale=BASE_SCALES["Address"] * SCALE * 0.3, seed=SEED
    )
    table = dataset.fresh_table()
    standardizer = Standardizer(table, dataset.column)
    oracle = GroundTruthOracle(
        dataset.canonical, standardizer.store, seed=SEED
    )
    log = standardizer.run(oracle, BUDGETS["Address"])
    model = build_model(
        log,
        dataset.column,
        name="address-serve-bench",
        provenance={"dataset": dataset.name, "seed": SEED},
    )
    values = list(table.column_values(dataset.column))
    batch = (values * ((BATCH_VALUES // max(1, len(values))) + 1))[
        :BATCH_VALUES
    ]
    return model, batch


def test_serve_throughput_under_hot_reload(
    benchmark, serve_model, tmp_path
):
    model, batch = serve_model
    # v2 = the identity variant: observably different outputs, so a
    # reply's claimed version is checkable against offline engines.
    payload = model.to_dict()
    payload["groups"] = []
    identity = TransformationModel.from_dict(payload)
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(model, "addr")
    expected = {
        1: ApplyEngine(model).apply_values(batch),
        2: ApplyEngine(identity).apply_values(batch),
    }

    async def hammer():
        server = ServeServer(
            ModelSource(registry=registry, name="addr", ttl=60.0),
            follow=True,
            poll_interval=0.02,
        )
        await server.start("127.0.0.1", 0)
        host, port = server.address
        total = CLIENTS * REQUESTS_PER_CLIENT
        published = asyncio.Event()

        async def publisher():
            # Let half the load land on v1 first, then publish and wait
            # for the follow poller's swap to actually install before
            # releasing the second half — so traffic against both
            # versions is guaranteed even on a single slow core.
            await asyncio.sleep(0.0)
            while server._m_requests.value < total // 2:
                await asyncio.sleep(0.005)
            registry.save(identity, "addr")
            while server.source.current()[0] < 2:
                await asyncio.sleep(0.005)
            published.set()

        async def client_session():
            reader, writer = await asyncio.open_connection(host, port)
            line = (
                json.dumps({"op": "apply", "values": batch}) + "\n"
            ).encode()
            versions = set()
            try:
                for i in range(REQUESTS_PER_CLIENT):
                    if i == REQUESTS_PER_CLIENT // 2:
                        await published.wait()
                    writer.write(line)
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    assert reply["ok"], reply
                    version = reply["version"]
                    versions.add(version)
                    assert reply["values"] == expected[version], (
                        f"reply does not match offline v{version}"
                    )
            finally:
                writer.close()
                await writer.wait_closed()
            return versions

        try:
            publish_task = asyncio.create_task(publisher())
            started = time.perf_counter()
            version_sets = await asyncio.gather(
                *(client_session() for _ in range(CLIENTS))
            )
            elapsed = time.perf_counter() - started
            await publish_task
            versions_seen = set().union(*version_sets)
            stats = {
                "elapsed": elapsed,
                "requests": total,
                "replies_ok": server._m_replies_ok.value,
                "replies_error": server._m_replies_err.value,
                "reloads": server._m_reloads.value,
                "versions_seen": sorted(versions_seen),
            }
        finally:
            await server.stop()
        return stats

    stats = benchmark.pedantic(
        lambda: asyncio.run(hammer()), rounds=1, iterations=1
    )

    total = CLIENTS * REQUESTS_PER_CLIENT
    requests_per_second = total / stats["elapsed"]
    rows_per_second = requests_per_second * BATCH_VALUES

    print_banner("Serve throughput under concurrent load + hot reload")
    report(
        f"clients={CLIENTS}  requests={total}  batch={BATCH_VALUES} values\n"
        f"elapsed          : {stats['elapsed']:.3f}s\n"
        f"requests/second  : {requests_per_second:,.0f}\n"
        f"rows/second      : {rows_per_second:,.0f}\n"
        f"mid-run reloads  : {stats['reloads']} "
        f"(versions answered: {stats['versions_seen']})\n"
        f"errors           : {stats['replies_error']}"
    )
    record_result(
        "serve_throughput",
        clients=CLIENTS,
        requests=total,
        batch_values=BATCH_VALUES,
        elapsed_seconds=round(stats["elapsed"], 4),
        requests_per_second=round(requests_per_second, 1),
        rows_per_second=round(rows_per_second, 1),
        reloads=stats["reloads"],
    )

    # Correctness gates are unconditional: zero dropped, zero errors,
    # and the mid-run publish really swapped under the load.
    assert stats["replies_ok"] == total
    assert stats["replies_error"] == 0
    assert stats["versions_seen"] == [1, 2], (
        "hot swap not observed mid-run"
    )
    if ASSERT_SPEEDUP:
        assert requests_per_second >= MIN_REQUESTS_PER_SECOND, (
            f"serving tier sustained only {requests_per_second:.0f} "
            f"req/s (floor {MIN_REQUESTS_PER_SECOND})"
        )


#: Exact-rule count for the swap-latency bench — large enough that the
#: O(E**2) compile visibly dominates one registry poll.
SWAP_RULES = int(6000 * max(0.25, min(1.0, SCALE)))
SWAP_ROUNDS = 3


def test_hot_swap_latency_with_sidecar(tmp_path):
    """The ``--follow`` fix under test: a publish consumed through its
    precompiled sidecar must swap in measurably faster than one that
    forces the poller to recompile the model."""
    versions = [
        synthetic_exact_model(SWAP_RULES, name=f"swap-v{i}", salt=str(i))
        for i in range(SWAP_ROUNDS + 1)
    ]

    def measure(sidecar: bool):
        registry = ModelRegistry(
            tmp_path / ("with-sidecar" if sidecar else "without-sidecar")
        )
        registry.save(versions[0], "swap", sidecar=sidecar)
        source = ModelSource(registry=registry, name="swap", ttl=60.0)
        source.current()  # initial load, outside the measured window
        best = float("inf")
        for i, model in enumerate(versions[1:], start=1):
            registry.save(model, "swap", sidecar=sidecar)
            start = time.perf_counter()
            swapped = source.refresh()
            best = min(best, time.perf_counter() - start)
            assert swapped == i + 1, "publish must have swapped"
        if sidecar:
            # + 1: the initial load also came through its sidecar.
            assert source.sidecar_loads == SWAP_ROUNDS + 1
            assert source.sidecar_misses == 0
        else:
            assert source.sidecar_loads == 0
        # Both arms serve identical outputs for the final version.
        sample = [g.members[0].lhs for g in versions[-1].groups[:32]]
        _, engine = source.current()
        return best, engine.apply_values(sample)

    t_recompile, out_recompile = measure(sidecar=False)
    t_sidecar, out_sidecar = measure(sidecar=True)
    assert out_sidecar == out_recompile, (
        "sidecar-backed swap must serve byte-identical outputs"
    )

    swap_speedup = t_recompile / t_sidecar if t_sidecar > 0 else float("inf")

    print_banner("Hot-swap latency: sidecar-backed vs recompiling poll")
    report(f"exact rules        : {SWAP_RULES}")
    report(f"recompiling swap   : {t_recompile * 1000:8.1f}ms")
    report(
        f"sidecar swap       : {t_sidecar * 1000:8.1f}ms   "
        f"({swap_speedup:5.1f}x)"
    )

    record_result(
        "serve_hot_swap",
        rules=SWAP_RULES,
        recompile_swap_seconds=round(t_recompile, 4),
        sidecar_swap_seconds=round(t_sidecar, 4),
        swap_speedup=round(swap_speedup, 2),
    )

    if ASSERT_SPEEDUP:
        assert swap_speedup >= 2.0, (
            f"sidecar swap must beat the recompiling poll (got "
            f"{swap_speedup:.1f}x)"
        )
    else:
        report(
            "(REPRO_BENCH_ASSERT_SPEEDUP=0: speedup reported, not "
            "asserted)"
        )
