"""Network serving tier throughput under concurrent load + hot reload.

The claim under test: the asyncio serving tier sustains real
concurrent traffic — many clients pipelining batch applies — *while a
new model version is published and hot-swapped mid-run*, without
dropping or corrupting a single request.  Measured on one in-process
server (no network stack noise beyond loopback):

* ``requests_per_second`` — completed request/reply round trips per
  second across all clients;
* ``rows_per_second`` — standardized values per second (each request
  carries a batch);
* the mid-run publish must actually swap (both versions observed) and
  every reply must byte-match the offline engine of the version it
  claims — throughput that breaks correctness does not count.

The absolute floor is asserted only when
``REPRO_BENCH_ASSERT_SPEEDUP`` is on (default), mirroring the other
gates; the recorded trajectory feeds ``repro bench check``.
"""

import asyncio
import json
import os
import time

import pytest

from repro.datagen import address_dataset
from repro.pipeline.oracle import GroundTruthOracle
from repro.pipeline.standardize import Standardizer
from repro.serve import (
    ApplyEngine,
    ModelRegistry,
    ModelSource,
    ServeServer,
    TransformationModel,
    build_model,
)

from conftest import BASE_SCALES, BUDGETS, SCALE, print_banner, record_result, report

ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP", "1") != "0"

SEED = 13
CLIENTS = 8
REQUESTS_PER_CLIENT = 40
BATCH_VALUES = 64
#: Conservative absolute floor — loopback asyncio round trips with a
#: compiled-engine apply per request run far above this everywhere.
MIN_REQUESTS_PER_SECOND = 100.0


@pytest.fixture(scope="module")
def serve_model():
    dataset = address_dataset(
        scale=BASE_SCALES["Address"] * SCALE * 0.3, seed=SEED
    )
    table = dataset.fresh_table()
    standardizer = Standardizer(table, dataset.column)
    oracle = GroundTruthOracle(
        dataset.canonical, standardizer.store, seed=SEED
    )
    log = standardizer.run(oracle, BUDGETS["Address"])
    model = build_model(
        log,
        dataset.column,
        name="address-serve-bench",
        provenance={"dataset": dataset.name, "seed": SEED},
    )
    values = list(table.column_values(dataset.column))
    batch = (values * ((BATCH_VALUES // max(1, len(values))) + 1))[
        :BATCH_VALUES
    ]
    return model, batch


def test_serve_throughput_under_hot_reload(
    benchmark, serve_model, tmp_path
):
    model, batch = serve_model
    # v2 = the identity variant: observably different outputs, so a
    # reply's claimed version is checkable against offline engines.
    payload = model.to_dict()
    payload["groups"] = []
    identity = TransformationModel.from_dict(payload)
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(model, "addr")
    expected = {
        1: ApplyEngine(model).apply_values(batch),
        2: ApplyEngine(identity).apply_values(batch),
    }

    async def hammer():
        server = ServeServer(
            ModelSource(registry=registry, name="addr", ttl=60.0),
            follow=True,
            poll_interval=0.02,
        )
        await server.start("127.0.0.1", 0)
        host, port = server.address
        total = CLIENTS * REQUESTS_PER_CLIENT
        published = asyncio.Event()

        async def publisher():
            # Let roughly half the load land on v1 first.
            await asyncio.sleep(0.0)
            while server._m_requests.value < total // 2:
                await asyncio.sleep(0.005)
            registry.save(identity, "addr")
            published.set()

        async def client_session():
            reader, writer = await asyncio.open_connection(host, port)
            line = (
                json.dumps({"op": "apply", "values": batch}) + "\n"
            ).encode()
            versions = set()
            try:
                for _ in range(REQUESTS_PER_CLIENT):
                    writer.write(line)
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    assert reply["ok"], reply
                    version = reply["version"]
                    versions.add(version)
                    assert reply["values"] == expected[version], (
                        f"reply does not match offline v{version}"
                    )
            finally:
                writer.close()
                await writer.wait_closed()
            return versions

        try:
            publish_task = asyncio.create_task(publisher())
            started = time.perf_counter()
            version_sets = await asyncio.gather(
                *(client_session() for _ in range(CLIENTS))
            )
            elapsed = time.perf_counter() - started
            await publish_task
            versions_seen = set().union(*version_sets)
            stats = {
                "elapsed": elapsed,
                "requests": total,
                "replies_ok": server._m_replies_ok.value,
                "replies_error": server._m_replies_err.value,
                "reloads": server._m_reloads.value,
                "versions_seen": sorted(versions_seen),
            }
        finally:
            await server.stop()
        return stats

    stats = benchmark.pedantic(
        lambda: asyncio.run(hammer()), rounds=1, iterations=1
    )

    total = CLIENTS * REQUESTS_PER_CLIENT
    requests_per_second = total / stats["elapsed"]
    rows_per_second = requests_per_second * BATCH_VALUES

    print_banner("Serve throughput under concurrent load + hot reload")
    report(
        f"clients={CLIENTS}  requests={total}  batch={BATCH_VALUES} values\n"
        f"elapsed          : {stats['elapsed']:.3f}s\n"
        f"requests/second  : {requests_per_second:,.0f}\n"
        f"rows/second      : {rows_per_second:,.0f}\n"
        f"mid-run reloads  : {stats['reloads']} "
        f"(versions answered: {stats['versions_seen']})\n"
        f"errors           : {stats['replies_error']}"
    )
    record_result(
        "serve_throughput",
        clients=CLIENTS,
        requests=total,
        batch_values=BATCH_VALUES,
        elapsed_seconds=round(stats["elapsed"], 4),
        requests_per_second=round(requests_per_second, 1),
        rows_per_second=round(rows_per_second, 1),
        reloads=stats["reloads"],
    )

    # Correctness gates are unconditional: zero dropped, zero errors,
    # and the mid-run publish really swapped under the load.
    assert stats["replies_ok"] == total
    assert stats["replies_error"] == 0
    assert stats["versions_seen"] == [1, 2], (
        "hot swap not observed mid-run"
    )
    if ASSERT_SPEEDUP:
        assert requests_per_second >= MIN_REQUESTS_PER_SECOND, (
            f"serving tier sustained only {requests_per_second:.0f} "
            f"req/s (floor {MIN_REQUESTS_PER_SECOND})"
        )
