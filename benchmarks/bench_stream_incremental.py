"""Streaming consolidation: incremental batch updates vs full relearn.

A production stream receives record batches continuously.  Without the
``repro.stream`` subsystem the only way to absorb a batch is to rebuild
everything: re-cluster the cumulative records, regenerate all
candidates, regroup, and re-ask the oracle about groups it already
judged.  The incremental path keeps cluster / candidate / decision
state alive, so each batch costs work proportional to the *batch* —
not to everything seen so far.

Measured on one Address stream of B batches:

* ``incremental`` — one warm :class:`~repro.stream.StreamConsolidator`
  processing batches 2..B (batch 1 is cold start for both sides and
  excluded);
* ``full relearn`` — for each batch 2..B, consolidating the cumulative
  records from scratch (cluster by key, generate candidates, group,
  review), which is what a batch pipeline without persistent state
  must do.

Correctness rides alongside speed: the incremental run must agree with
one final from-scratch consolidation on >= 95% of per-record
standardized values (exact equality under unbounded budgets on
variant-only workloads is pinned by
``tests/stream/test_consolidator.py``; under bounded budgets on the
conflict-heavy Address mix, presentation order legitimately explores
slightly different group subsets), and later batches must ask strictly
fewer oracle questions than their from-scratch counterpart.

The headline claim — incremental updates are at least **10x** faster
than relearning from scratch on the same cumulative data — is
asserted, not just printed.
"""

import time

import pytest

from repro.data.table import Record
from repro.datagen import address_dataset, dataset_stream
from repro.pipeline.oracle import GroundTruthOracle
from repro.pipeline.standardize import Standardizer
from repro.resolution.matcher import cluster_by_key
from repro.stream import StreamConsolidator, ground_truth_oracle_factory

from conftest import BASE_SCALES, SCALE, print_banner, record_result, report

#: The stream slice: large enough that quadratic relearning hurts.
STREAM_FACTOR = 2.0
N_BATCHES = 6
BUDGET = 60
SEED = 23


@pytest.fixture(scope="module")
def stream():
    dataset = address_dataset(
        scale=BASE_SCALES["Address"] * SCALE * STREAM_FACTOR, seed=SEED
    )
    return dataset_stream(dataset, batches=N_BATCHES, seed=SEED)


def full_relearn(stream, upto):
    """From-scratch consolidation of batches[:upto] (the baseline)."""
    records = [
        Record(r.rid, dict(r.values), r.source)
        for batch in stream.batches[:upto]
        for r in batch
    ]
    table = cluster_by_key(records, stream.key_column)
    standardizer = Standardizer(table, stream.column)
    oracle = GroundTruthOracle(
        stream.canonical_cells(table), standardizer.store, seed=SEED
    )
    log = standardizer.run(oracle, BUDGET * upto)
    return table, log


def test_stream_incremental_vs_full_relearn(stream):
    # -- incremental: one long-lived consolidator ------------------------
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=SEED
        ),
        key_attribute=stream.key_column,
        budget_per_batch=BUDGET,
        use_engine=False,  # same machinery as the baseline: exact compare
    )
    consolidator.process_batch(stream.batches[0])  # cold start (excluded)
    t_incremental = 0.0
    for batch in stream.batches[1:]:
        start = time.perf_counter()
        consolidator.process_batch(batch)
        t_incremental += time.perf_counter() - start

    # -- baseline: relearn the cumulative data at every batch ------------
    t_full = 0.0
    full_questions = []
    for upto in range(2, len(stream.batches) + 1):
        start = time.perf_counter()
        _table, log = full_relearn(stream, upto)
        t_full += time.perf_counter() - start
        full_questions.append(log.groups_confirmed)

    # -- correctness: convergent final state, fewer questions ------------
    final_table, _final_log = full_relearn(stream, len(stream.batches))

    def final_by_rid(table):
        return {
            r.rid: r.values[stream.column]
            for c in table.clusters
            for r in c.records
        }

    mine, theirs = final_by_rid(consolidator.table), final_by_rid(final_table)
    agreement = sum(
        1 for rid, value in mine.items() if theirs.get(rid) == value
    ) / max(1, len(mine))
    assert agreement >= 0.95, (
        f"incremental stream must converge to the one-shot "
        f"standardization (agreement {agreement:.1%})"
    )
    stream_questions = [
        r.questions_asked for r in consolidator.reports[1:]
    ]
    assert all(
        mine < theirs
        for mine, theirs in zip(stream_questions, full_questions)
    ), (
        f"each incremental batch must ask fewer questions than a full "
        f"relearn ({stream_questions} vs {full_questions})"
    )

    speedup = t_full / t_incremental if t_incremental > 0 else float("inf")

    print_banner(
        "Stream ingestion: incremental updates vs full relearn (Address)"
    )
    report(
        f"stream: {stream.num_records} records in "
        f"{len(stream.batches)} batches, budget {BUDGET}/batch"
    )
    report(
        f"full relearn (batches 2..{len(stream.batches)}): "
        f"{t_full:8.3f}s   questions per batch: {full_questions}"
    )
    report(
        f"incremental  (batches 2..{len(stream.batches)}): "
        f"{t_incremental:8.3f}s   questions per batch: {stream_questions}"
    )
    report(
        f"speedup: {speedup:6.1f}x   final-state agreement: {agreement:.1%}"
    )

    record_result(
        "stream_incremental",
        test="incremental_vs_relearn",
        records=stream.num_records,
        full_seconds=round(t_full, 4),
        incremental_seconds=round(t_incremental, 4),
        speedup=round(speedup, 2),
        agreement=round(agreement, 4),
    )

    assert speedup >= 10.0, (
        f"incremental batch updates must be >= 10x faster than full "
        f"relearn (got {speedup:.1f}x)"
    )
