"""Streaming golden records: incremental fusion vs full per-batch re-fusion.

Every batch of a multi-column stream changes the membership or cell
values of only *some* clusters, yet a naive streaming golden-record
pipeline re-runs truth discovery over **every** live cluster after
**every** batch.  :class:`~repro.stream.golden.GoldenStreamConsolidator`
instead re-fuses exactly the clusters the batch touched (appends, merge
moves, and the ``changed_into`` cell deltas the per-column
standardizers report) — work proportional to the batch, not to the
accumulated table.

Measured on one 3-column golden stream (address + authors + title,
shared entity identity), arriving **entity-grouped** (``shuffle=False``
— the per-source bulk-load pattern where a batch concentrates on few
clusters; a fully shuffled stream still wins by the touched/live
ratio, it is just a smaller one):

* ``incremental`` — the consolidator's own fusion refresh
  (``fusion_seconds``, i.e. the kernel applied to touched clusters);
* ``full per-batch`` — timing
  :meth:`~repro.stream.golden.GoldenStreamConsolidator.full_refusion`
  (table-level majority fusion of every live cluster, all columns)
  after every batch, which is what the consolidator itself falls back
  to for global methods like Accu/TruthFinder.

Two ratios are reported and asserted:

* the **work ratio** — clusters fused per run (``clusters_live`` summed
  vs ``clusters_refused`` summed).  Deterministic, machine-independent:
  asserted ``>= 5x`` unconditionally;
* the **wall-clock speedup** — asserted ``>= 5x`` unless
  ``REPRO_BENCH_ASSERT_SPEEDUP=0`` (shared CI runners report it
  without asserting; sub-millisecond fusion timings are jittery there).

Correctness rides alongside: after the final batch the incrementally
maintained golden records must equal a from-scratch full re-fusion of
the final table, exactly.
"""

import os
import time

import pytest

from repro.datagen.stream import golden_stream
from repro.stream import (
    GoldenStreamConsolidator,
    golden_ground_truth_oracle_factory,
)

from conftest import SCALE, print_banner, record_result, report

ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP", "1") != "0"

N_CLUSTERS = max(120, int(320 * SCALE))
N_BATCHES = 16
BUDGET = 20
SEED = 21


@pytest.fixture(scope="module")
def stream():
    return golden_stream(
        batches=N_BATCHES,
        n_clusters=N_CLUSTERS,
        mean_cluster_size=3.0,
        conflict_rate=0.0,
        variant_rate=0.6,
        seed=SEED,
        shuffle=False,  # entity-grouped arrival: the delta regime
    )


def test_incremental_fusion_vs_full_per_batch_refusion(stream):
    consolidator = GoldenStreamConsolidator(
        columns=stream.columns,
        oracle_factory=golden_ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=SEED
        ),
        key_attribute=stream.key_column,
        budget_per_batch=BUDGET,
        use_engine=True,
    )
    t_full = 0.0
    with consolidator:
        for batch in stream.batches:
            consolidator.process_batch(batch)
            # The naive alternative, timed in the same process state:
            # re-fuse every live cluster after this batch.
            start = time.perf_counter()
            full = consolidator.full_refusion()
            t_full += time.perf_counter() - start

        # -- correctness: incremental fusion is exact ----------------
        maintained = {
            record.cluster: dict(record.values)
            for record in consolidator.golden_records()
        }
        assert maintained == full, (
            "incrementally maintained golden records must equal a "
            "from-scratch re-fusion of the final table"
        )

    t_incremental = sum(r.fusion_seconds for r in consolidator.reports)
    work_incremental = sum(
        r.clusters_refused for r in consolidator.reports
    )
    work_full = sum(r.clusters_live for r in consolidator.reports)
    work_ratio = work_full / max(1, work_incremental)
    speedup = (
        t_full / t_incremental if t_incremental > 0 else float("inf")
    )

    print_banner(
        "Streaming golden records: incremental vs full per-batch fusion"
    )
    report(
        f"stream: {stream.num_records} records, "
        f"{len(stream.columns)} columns, {N_BATCHES} batches, "
        f"{N_CLUSTERS} entities"
    )
    report(
        f"full per-batch re-fusion: {t_full * 1000:8.2f}ms   "
        f"clusters fused: {work_full}"
    )
    report(
        f"incremental (touched)   : {t_incremental * 1000:8.2f}ms   "
        f"clusters fused: {work_incremental}"
    )
    report(
        f"speedup: {speedup:6.1f}x wall-clock, {work_ratio:.1f}x work"
    )

    record_result(
        "stream_golden",
        test="incremental_vs_full_refusion",
        records=stream.num_records,
        columns=len(stream.columns),
        batches=N_BATCHES,
        full_ms=round(t_full * 1000, 3),
        incremental_ms=round(t_incremental * 1000, 3),
        speedup=round(speedup, 2),
        work_ratio=round(work_ratio, 2),
        questions=consolidator.questions_asked,
    )

    assert work_ratio >= 5.0, (
        f"incremental fusion must touch >= 5x fewer clusters than "
        f"full per-batch re-fusion (got {work_ratio:.1f}x)"
    )
    if ASSERT_SPEEDUP:
        assert speedup >= 5.0, (
            f"incremental fusion must be >= 5x faster than full "
            f"per-batch re-fusion (got {speedup:.1f}x)"
        )
    else:
        report(
            "(REPRO_BENCH_ASSERT_SPEEDUP=0: speedup reported, not "
            "asserted)"
        )
