"""MinHash-LSH blocking vs token blocking on a high-cardinality stream.

Token blocking puts every record sharing a token in one block.  On
attributes with a popular vocabulary — street suffixes, city names,
legal-entity suffixes — a handful of tokens ("street", "springfield")
collect most of the stream, and the within-block scan makes
similarity-mode resolution O(block²) per batch.  The classic fix is a
block-size guard, but skipping an oversized block *silently drops
recall*.

``lsh_keys`` blocks by banded MinHash signatures over character
shingles instead: two values share a block only when their shingle
sets are actually similar, so blocks stay near-duplicate-sized no
matter how popular the vocabulary is, and no guard (or recall loss) is
needed.

This benchmark asserts the two claims of the LSH release:

* **>= 3x wall-clock** on a high-cardinality similarity-mode stream
  versus token blocking doing the same (unguarded) work, driven by
  candidate pruning — the LSH path evaluates a small fraction of the
  token path's comparisons while co-clustering the same entities;
* **sharding stays unobservable**: under ``--blocking lsh`` the
  consolidator publishes identical models and asks identical oracle
  questions at ``--shards 1`` and ``--shards 4``.
"""

import os
import random
import time

import pytest

from repro.data.table import Record
from repro.datagen import address_dataset, dataset_stream
from repro.datagen.base import GeneratorSpec
from repro.resolution.blocking import lsh_keys, token_keys
from repro.stream import (
    IncrementalResolver,
    StreamConsolidator,
    ground_truth_oracle_factory,
)

from conftest import SCALE, print_banner, record_result, report

SEED = 47
MIN_SPEEDUP = 3.0
#: The candidate-pruning and recall assertions are deterministic and
#: always enforced; the wall-clock ratio compares two timed runs, so
#: shared CI runners may set REPRO_BENCH_ASSERT_SPEEDUP=0 to report
#: it without asserting (same escape hatch as bench_stream_sharded).
ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP", "1") != "0"
THRESHOLD = 0.6
#: Token-path pairs grow quadratically with entity count while the
#: LSH path grows linearly, so the measured gap is size-sensitive: at
#: the default scale it is ~2x the asserted minimum.  The floor keeps
#: the stream in the high-cardinality regime the claim is about even
#: when REPRO_BENCH_SCALE trims the rest of the suite (the whole
#: benchmark stays a few seconds).
N_ENTITIES = max(280, int(340 * SCALE))
VARIANTS = 4
N_BATCHES = 5

#: The popular vocabulary: every value carries two of these, so token
#: blocking concentrates the whole stream into a few giant blocks.
SUFFIXES = ["street", "avenue", "road", "boulevard"]
CITIES = ["springfield", "shelbyville", "centerville"]


def make_batches(n_entities=N_ENTITIES, variants=VARIANTS, seed=SEED):
    """``n_entities * variants`` records whose values share a popular
    suffix/city vocabulary (high-cardinality token blocks) around a
    distinguishing per-entity core."""
    rng = random.Random(seed)
    letters = "abcdefghijklmnopqrstuvwxyz"

    def entity_core(i):
        stem = "".join(rng.choice(letters) for _ in range(9))
        return f"{stem}{i}"

    records = []
    for i in range(n_entities):
        core = entity_core(i)
        number = rng.randrange(1, 999)
        suffix = rng.choice(SUFFIXES)
        city = rng.choice(CITIES)
        base = f"{number} {core} {suffix} {city}"
        for v in range(variants):
            value = base
            if v and rng.random() < 0.8:  # small typo in the core
                pos = value.index(core) + rng.randrange(len(core))
                value = value[:pos] + rng.choice(letters) + value[pos + 1 :]
            records.append((f"e{i}", Record(f"e{i}v{v}", {"addr": value})))
    rng.shuffle(records)
    per_batch = (len(records) + N_BATCHES - 1) // N_BATCHES
    batches = [
        records[i : i + per_batch]
        for i in range(0, len(records), per_batch)
    ]
    return batches


def run_stream(batches, block_keys):
    resolver = IncrementalResolver(
        ("addr",),
        attribute="addr",
        threshold=THRESHOLD,
        block_keys=block_keys,
        # No oversized-block guard: both paths keep full recall, so
        # the token path pays the true O(block²) cost LSH prunes.
        max_block_size=10**9,
    )
    start = time.perf_counter()
    pairs = 0
    for batch in batches:
        result = resolver.add_batch([record for _, record in batch])
        pairs += result.pairs_compared
    elapsed = time.perf_counter() - start
    # entity -> set of cluster slots its records landed in
    placement = {}
    for batch in batches:
        for entity, record in batch:
            slot, _row = resolver.position(record.rid)
            placement.setdefault(entity, set()).add(slot)
    return elapsed, pairs, placement


def recall_of(placement):
    """Fraction of entities whose variants all share one cluster."""
    whole = sum(1 for slots in placement.values() if len(slots) == 1)
    return whole / len(placement)


def test_lsh_blocking_speedup_and_pruning():
    batches = make_batches()
    n_records = sum(len(b) for b in batches)

    t_token, pairs_token, placed_token = run_stream(batches, token_keys)
    t_lsh, pairs_lsh, placed_lsh = run_stream(
        batches, lsh_keys(bands=8, rows=4)
    )

    speedup = t_token / t_lsh if t_lsh > 0 else float("inf")
    prune = pairs_lsh / pairs_token if pairs_token else 0.0
    recall_token = recall_of(placed_token)
    recall_lsh = recall_of(placed_lsh)

    print_banner(
        "MinHash-LSH blocking vs token blocking "
        "(high-cardinality similarity stream)"
    )
    report(
        f"stream: {n_records} records ({N_ENTITIES} entities x "
        f"{VARIANTS} variants) in {len(batches)} batches, "
        f"threshold {THRESHOLD}"
    )
    report(
        f"token blocking : {t_token:8.3f}s   "
        f"{pairs_token:9d} pairs compared   "
        f"entity recall {recall_token:.3f}"
    )
    report(
        f"lsh blocking   : {t_lsh:8.3f}s   "
        f"{pairs_lsh:9d} pairs compared   "
        f"entity recall {recall_lsh:.3f}"
    )
    report(
        f"speedup: {speedup:5.2f}x   candidates kept: {prune:.1%}"
    )
    record_result(
        "lsh_blocking",
        test="speedup",
        records=n_records,
        token_seconds=round(t_token, 4),
        lsh_seconds=round(t_lsh, 4),
        speedup=round(speedup, 3),
        pairs_token=pairs_token,
        pairs_lsh=pairs_lsh,
        recall_token=round(recall_token, 4),
        recall_lsh=round(recall_lsh, 4),
    )

    # Pruning is the mechanism; recall is the constraint that makes it
    # meaningful; wall-clock is the claim.
    assert pairs_lsh < pairs_token * 0.25, (
        f"LSH must prune the candidate set "
        f"({pairs_lsh} vs {pairs_token} pairs)"
    )
    assert recall_lsh >= recall_token - 0.02, (
        f"LSH pruning must not cost entity recall "
        f"({recall_lsh:.3f} vs {recall_token:.3f})"
    )
    if ASSERT_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"LSH blocking must be >= {MIN_SPEEDUP}x faster than token "
            f"blocking on a high-cardinality stream (got {speedup:.2f}x)"
        )
    else:
        report(
            "(REPRO_BENCH_ASSERT_SPEEDUP=0: speedup reported, not "
            "asserted — pruning and recall still asserted above)"
        )


SPEC = GeneratorSpec(
    n_clusters=max(8, int(60 * SCALE)),
    mean_cluster_size=4.0,
    conflict_rate=0.1,
    variant_rate=0.85,
    seed=SEED,
)


@pytest.fixture(scope="module")
def lsh_stream():
    dataset = address_dataset(spec=SPEC, seed=SEED)
    return dataset_stream(dataset, batches=3, seed=SEED)


def run_consolidator(stream, shards):
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=SEED
        ),
        attribute=stream.column,
        similarity_threshold=THRESHOLD,
        block_keys=lsh_keys(bands=8, rows=2),
        budget_per_batch=60,
        use_engine=False,
        shards=shards,
        model_name="lsh-bench",
        persist_decisions=False,
    )
    with consolidator:
        consolidator.run(stream.batches)
        questions = [r.questions_asked for r in consolidator.reports]
        groups = [g.to_dict() for g in consolidator.build_model().groups]
        final = {
            r.rid: r.values[stream.column]
            for c in consolidator.table.clusters
            for r in c.records
        }
    return questions, groups, final


def test_lsh_sharded_models_and_questions_identical(lsh_stream):
    q1, g1, f1 = run_consolidator(lsh_stream, shards=1)
    q4, g4, f4 = run_consolidator(lsh_stream, shards=4)
    report(
        f"LSH consolidator: --shards 1 vs --shards 4 -> "
        f"questions {q1} vs {q4}, {len(g1)} published groups each"
    )
    record_result(
        "lsh_blocking",
        test="sharded_equivalence",
        questions=sum(q1),
        groups=len(g1),
        identical=(q1 == q4 and g1 == g4 and f1 == f4),
    )
    assert q4 == q1, "sharding must not change the oracle bill"
    assert g4 == g1, "published group sequences must be identical"
    assert f4 == f1, "final standardization must be identical"
