"""Serve-engine throughput: compiled apply vs. re-running the learner.

The paper's loop pays graphs, pivot searches, and human review every
time it runs.  The ``repro.serve`` subsystem pays them once: a learned
model is persisted and then applied to new tables as O(N) hash lookups
(plus structure-indexed program evaluation for unseen values).

Measured on one Address sample:

* ``learn``   — full standardization (candidates, graphs, grouping,
  oracle), the cost this subsystem amortizes away;
* ``replay``  — provenance-aware exact re-application
  (:class:`~repro.serve.replay.ModelReplayer`): no graphs, no search,
  no human; reproduces the learner's cell edits exactly (asserted);
* ``engine``  — the compiled value engine on the same rows, then on a
  replicated large batch for a steady-state rows/sec figure.

The headline claim — the compiled engine is at least **10x** faster
than re-learning on the same input — is asserted, not just printed.
"""

import os
import random
import time

import pytest

from repro.datagen import address_dataset
from repro.pipeline.oracle import GroundTruthOracle
from repro.pipeline.standardize import Standardizer
from repro.serve import (
    ApplyEngine,
    ModelReplayer,
    ModelRegistry,
    build_model,
    try_load_index,
)

from conftest import (
    BASE_SCALES,
    BUDGETS,
    SCALE,
    print_banner,
    record_result,
    report,
    synthetic_exact_model,
)

ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP", "1") != "0"

#: Reduced slice (like Figure 9): learning is the slow side here.
APPLY_FACTOR = 0.5
#: Large-batch replication factor for the steady-state rows/sec figure.
REPLICAS = 40
SEED = 13

#: The skewed production-shaped workload: ~1M rows over at most 5k
#: distinct values (Zipf-weighted), the regime the columnar apply path
#: is built for.
SKEWED_ROWS = int(1_000_000 * SCALE)
SKEWED_DISTINCT = 5000

#: Rows the unmemoized per-row arm actually executes; its per-row cost
#: is flat (no memo, so row N costs the same as row 1), so the
#: full-column time extrapolates linearly and the bench stays minutes-
#: free.  Byte-identity is still asserted on this slice, and on the
#: whole column against the LRU path.
PER_ROW_SAMPLE = 200_000

#: Exact-rule count for the sidecar reload bench — big enough that the
#: O(E**2) chain-compose visibly dominates a JSON parse.
SIDECAR_RULES = int(3000 * max(0.25, min(1.0, SCALE)))


@pytest.fixture(scope="module")
def apply_dataset():
    return address_dataset(
        scale=BASE_SCALES["Address"] * SCALE * APPLY_FACTOR, seed=SEED
    )


def test_apply_throughput(benchmark, apply_dataset):
    dataset = apply_dataset
    column = dataset.column
    budget = BUDGETS["Address"]

    # -- learn once (the cost being amortized) ---------------------------
    start = time.perf_counter()
    learned_table = dataset.fresh_table()
    standardizer = Standardizer(learned_table, column)
    oracle = GroundTruthOracle(
        dataset.canonical, standardizer.store, seed=SEED
    )
    log = standardizer.run(oracle, budget)
    t_learn = time.perf_counter() - start
    model = build_model(
        log,
        column,
        name="address-bench",
        provenance={"dataset": dataset.name, "seed": SEED},
    )

    # -- exact replay on an identical fresh table ------------------------
    fresh = dataset.fresh_table()
    start = time.perf_counter()
    ModelReplayer(model).apply(fresh)
    t_replay = time.perf_counter() - start
    assert fresh.column_values(column) == learned_table.column_values(
        column
    ), "replay must reproduce the learner cell-for-cell"

    # -- compiled engine on the same input -------------------------------
    values = dataset.fresh_table().column_values(column)
    engine = ApplyEngine(model)
    start = time.perf_counter()
    engine.apply_values(values)
    t_engine = time.perf_counter() - start

    # -- steady-state throughput on a large batch ------------------------
    big_engine = ApplyEngine(model)
    big_batch = values * REPLICAS
    big_result = benchmark.pedantic(
        lambda: big_engine.apply_values(big_batch), rounds=3, iterations=1
    )
    assert len(big_result) == len(big_batch)
    t_big = benchmark.stats.stats.mean
    rows_per_sec = len(big_batch) / t_big if t_big > 0 else float("inf")

    engine_speedup = t_learn / t_engine if t_engine > 0 else float("inf")
    replay_speedup = t_learn / t_replay if t_replay > 0 else float("inf")

    print_banner(
        "Apply throughput: compiled serve engine vs re-learning (Address)"
    )
    report(
        f"rows={len(values)}  confirmed groups={model.groups_confirmed}  "
        f"replacements={model.replacements_confirmed}"
    )
    report(
        f"learn:  {t_learn:8.3f}s   (candidates + graphs + grouping + oracle)"
    )
    report(
        f"replay: {t_replay:8.3f}s   ({replay_speedup:6.1f}x, "
        "exact cell-level reproduction)"
    )
    report(
        f"engine: {t_engine:8.3f}s   ({engine_speedup:6.1f}x, "
        "compiled hash/program lookups)"
    )
    report(
        f"steady-state batch ({len(big_batch)} rows): "
        f"{rows_per_sec:,.0f} rows/s"
    )

    record_result(
        "apply_throughput",
        test="engine_vs_relearn",
        rows=len(values),
        learn_seconds=round(t_learn, 4),
        replay_seconds=round(t_replay, 4),
        engine_seconds=round(t_engine, 4),
        engine_speedup=round(engine_speedup, 2),
        replay_speedup=round(replay_speedup, 2),
        steady_rows_per_sec=round(rows_per_sec, 1),
    )

    assert engine_speedup >= 10.0, (
        f"compiled engine must be >= 10x faster than re-learning "
        f"(got {engine_speedup:.1f}x)"
    )


@pytest.fixture(scope="module")
def skewed_workload(apply_dataset):
    """A learned Address model plus a production-shaped skewed column:
    ``SKEWED_ROWS`` rows drawn Zipf-weighted from a pool of at most
    ``SKEWED_DISTINCT`` distinct values (real dirty values padded with
    suffix variants so exact, program, token, and passthrough paths all
    see traffic)."""
    dataset = apply_dataset
    table = dataset.fresh_table()
    standardizer = Standardizer(table, dataset.column)
    oracle = GroundTruthOracle(
        dataset.canonical, standardizer.store, seed=SEED
    )
    log = standardizer.run(oracle, BUDGETS["Address"])
    model = build_model(
        log,
        dataset.column,
        name="address-skew-bench",
        provenance={"dataset": dataset.name, "seed": SEED},
    )
    base = list(dict.fromkeys(dataset.fresh_table().column_values(
        dataset.column
    )))
    pool = list(base)
    suffix = 0
    while len(pool) < SKEWED_DISTINCT:
        pool.append(f"{base[suffix % len(base)]} Unit {suffix}")
        suffix += 1
    pool = pool[:SKEWED_DISTINCT]
    rng = random.Random(SEED)
    weights = [1.0 / (i + 1) for i in range(len(pool))]
    values = rng.choices(pool, weights=weights, k=SKEWED_ROWS)
    return model, values


def test_skewed_columnar_apply(benchmark, skewed_workload):
    """The tentpole claim: on a skewed column the dictionary-encoded
    columnar path beats per-row rule application by >= 10x at
    byte-identical output (each distinct value is resolved once and
    broadcast through the code vector)."""
    model, values = skewed_workload
    distinct = len(dict.fromkeys(values))

    # -- per-row rule application (no memoization at all) ----------------
    sample_n = min(len(values), PER_ROW_SAMPLE)
    per_row_engine = ApplyEngine(model, cache_size=0)
    transform = per_row_engine.transform
    start = time.perf_counter()
    per_row_out = [transform(v) for v in values[:sample_n]]
    t_sample = time.perf_counter() - start
    t_per_row = t_sample * (len(values) / sample_n)

    # -- per-row through the LRU memo (the previous fast path) -----------
    memo_engine = ApplyEngine(model)
    transform = memo_engine.transform
    start = time.perf_counter()
    memo_out = [transform(v) for v in values]
    t_memo = time.perf_counter() - start

    # -- columnar: intern, resolve once per distinct, broadcast ----------
    columnar_engine = ApplyEngine(model)
    columnar_out = benchmark.pedantic(
        lambda: columnar_engine.apply_values(values), rounds=3, iterations=1
    )
    t_columnar = benchmark.stats.stats.mean

    assert columnar_out[:sample_n] == per_row_out, (
        "columnar apply must be byte-identical to the per-row path"
    )
    assert columnar_out == memo_out

    stats = columnar_engine.stats()
    assert stats.distinct_values <= SKEWED_DISTINCT
    assert stats.broadcast_rows > 0

    skewed_speedup = t_per_row / t_columnar if t_columnar > 0 else float("inf")
    memo_speedup = t_memo / t_columnar if t_columnar > 0 else float("inf")
    rows_per_sec = len(values) / t_columnar if t_columnar > 0 else float("inf")

    print_banner(
        "Skewed columnar apply: dictionary encoding vs per-row (Address)"
    )
    report(
        f"rows={len(values)}  distinct={distinct}  "
        f"broadcast_rows={stats.broadcast_rows}"
    )
    report(
        f"per-row (cold) : {t_per_row:8.3f}s"
        + (
            f"   (extrapolated from {sample_n} rows)"
            if sample_n < len(values)
            else ""
        )
    )
    report(f"per-row (LRU)  : {t_memo:8.3f}s   ({memo_speedup:5.1f}x vs columnar)")
    report(
        f"columnar       : {t_columnar:8.3f}s   ({skewed_speedup:5.1f}x, "
        f"{rows_per_sec:,.0f} rows/s)"
    )

    # No ``test=`` field: these are headline rows, and the baseline
    # gate only builds series from rows without one.
    record_result(
        "apply_skewed",
        rows=len(values),
        distinct=distinct,
        per_row_seconds=round(t_per_row, 4),
        memoized_seconds=round(t_memo, 4),
        columnar_seconds=round(t_columnar, 4),
        skewed_speedup=round(skewed_speedup, 2),
        memoized_speedup=round(memo_speedup, 2),
        columnar_rows_per_second=round(rows_per_sec, 1),
    )

    if ASSERT_SPEEDUP:
        assert skewed_speedup >= 10.0, (
            f"columnar apply must be >= 10x faster than per-row on the "
            f"skewed workload (got {skewed_speedup:.1f}x)"
        )
    else:
        report(
            "(REPRO_BENCH_ASSERT_SPEEDUP=0: speedup reported, not "
            "asserted)"
        )


def test_sidecar_reload(tmp_path):
    """Hot swap via the precompiled sidecar must beat recompiling the
    model — the cost the ``--follow`` poller used to pay per publish.

    Timed by hand (best of 3) rather than through the ``benchmark``
    fixture: each round needs a fresh pre-swap engine, whose own
    construction must stay out of the measured window.
    """
    model_a = synthetic_exact_model(SIDECAR_RULES, name="sidecar-a")
    # A disjoint rule set, so every A -> B reload is a full swap (never
    # the incremental append-only path).
    model_b = synthetic_exact_model(
        SIDECAR_RULES, name="sidecar-b", salt="B"
    )
    registry = ModelRegistry(tmp_path / "registry")
    registry.save(model_a, "sidecar-bench")
    path_b = registry.save(model_b, "sidecar-bench")
    index_b = try_load_index(path_b, model_b)
    assert index_b is not None, "publish must have written a sidecar"

    sample = [g.members[0].lhs for g in model_b.groups[:64]]

    # -- recompile arm (no sidecar offered) ------------------------------
    t_recompile = float("inf")
    for _ in range(3):
        engine = ApplyEngine(model_a)
        start = time.perf_counter()
        engine.reload(model_b)
        t_recompile = min(t_recompile, time.perf_counter() - start)
    expected = engine.apply_values(sample)

    # -- precompiled arm -------------------------------------------------
    t_sidecar = float("inf")
    for _ in range(3):
        sidecar_engine = ApplyEngine(model_a)
        start = time.perf_counter()
        sidecar_engine.reload(model_b, precompiled=index_b)
        t_sidecar = min(t_sidecar, time.perf_counter() - start)
    assert sidecar_engine.apply_values(sample) == expected, (
        "sidecar-installed engine must match the recompiled one"
    )
    assert sidecar_engine.stats().sidecar_loads == 1

    reload_speedup = t_recompile / t_sidecar if t_sidecar > 0 else float("inf")

    print_banner("Hot reload: precompiled sidecar vs recompilation")
    report(f"exact rules       : {SIDECAR_RULES}")
    report(f"recompile reload  : {t_recompile:8.4f}s")
    report(
        f"sidecar reload    : {t_sidecar:8.4f}s   "
        f"({reload_speedup:5.1f}x)"
    )

    record_result(
        "apply_sidecar_reload",
        rules=SIDECAR_RULES,
        recompile_seconds=round(t_recompile, 4),
        sidecar_seconds=round(t_sidecar, 4),
        reload_speedup=round(reload_speedup, 2),
    )

    if ASSERT_SPEEDUP:
        assert reload_speedup >= 2.0, (
            f"sidecar reload must beat recompilation (got "
            f"{reload_speedup:.1f}x)"
        )
    else:
        report(
            "(REPRO_BENCH_ASSERT_SPEEDUP=0: speedup reported, not "
            "asserted)"
        )
