"""Serve-engine throughput: compiled apply vs. re-running the learner.

The paper's loop pays graphs, pivot searches, and human review every
time it runs.  The ``repro.serve`` subsystem pays them once: a learned
model is persisted and then applied to new tables as O(N) hash lookups
(plus structure-indexed program evaluation for unseen values).

Measured on one Address sample:

* ``learn``   — full standardization (candidates, graphs, grouping,
  oracle), the cost this subsystem amortizes away;
* ``replay``  — provenance-aware exact re-application
  (:class:`~repro.serve.replay.ModelReplayer`): no graphs, no search,
  no human; reproduces the learner's cell edits exactly (asserted);
* ``engine``  — the compiled value engine on the same rows, then on a
  replicated large batch for a steady-state rows/sec figure.

The headline claim — the compiled engine is at least **10x** faster
than re-learning on the same input — is asserted, not just printed.
"""

import time

import pytest

from repro.datagen import address_dataset
from repro.pipeline.oracle import GroundTruthOracle
from repro.pipeline.standardize import Standardizer
from repro.serve import ApplyEngine, ModelReplayer, build_model

from conftest import BASE_SCALES, BUDGETS, SCALE, print_banner, record_result, report

#: Reduced slice (like Figure 9): learning is the slow side here.
APPLY_FACTOR = 0.5
#: Large-batch replication factor for the steady-state rows/sec figure.
REPLICAS = 40
SEED = 13


@pytest.fixture(scope="module")
def apply_dataset():
    return address_dataset(
        scale=BASE_SCALES["Address"] * SCALE * APPLY_FACTOR, seed=SEED
    )


def test_apply_throughput(benchmark, apply_dataset):
    dataset = apply_dataset
    column = dataset.column
    budget = BUDGETS["Address"]

    # -- learn once (the cost being amortized) ---------------------------
    start = time.perf_counter()
    learned_table = dataset.fresh_table()
    standardizer = Standardizer(learned_table, column)
    oracle = GroundTruthOracle(
        dataset.canonical, standardizer.store, seed=SEED
    )
    log = standardizer.run(oracle, budget)
    t_learn = time.perf_counter() - start
    model = build_model(
        log,
        column,
        name="address-bench",
        provenance={"dataset": dataset.name, "seed": SEED},
    )

    # -- exact replay on an identical fresh table ------------------------
    fresh = dataset.fresh_table()
    start = time.perf_counter()
    ModelReplayer(model).apply(fresh)
    t_replay = time.perf_counter() - start
    assert fresh.column_values(column) == learned_table.column_values(
        column
    ), "replay must reproduce the learner cell-for-cell"

    # -- compiled engine on the same input -------------------------------
    values = dataset.fresh_table().column_values(column)
    engine = ApplyEngine(model)
    start = time.perf_counter()
    engine.apply_values(values)
    t_engine = time.perf_counter() - start

    # -- steady-state throughput on a large batch ------------------------
    big_engine = ApplyEngine(model)
    big_batch = values * REPLICAS
    big_result = benchmark.pedantic(
        lambda: big_engine.apply_values(big_batch), rounds=3, iterations=1
    )
    assert len(big_result) == len(big_batch)
    t_big = benchmark.stats.stats.mean
    rows_per_sec = len(big_batch) / t_big if t_big > 0 else float("inf")

    engine_speedup = t_learn / t_engine if t_engine > 0 else float("inf")
    replay_speedup = t_learn / t_replay if t_replay > 0 else float("inf")

    print_banner(
        "Apply throughput: compiled serve engine vs re-learning (Address)"
    )
    report(
        f"rows={len(values)}  confirmed groups={model.groups_confirmed}  "
        f"replacements={model.replacements_confirmed}"
    )
    report(
        f"learn:  {t_learn:8.3f}s   (candidates + graphs + grouping + oracle)"
    )
    report(
        f"replay: {t_replay:8.3f}s   ({replay_speedup:6.1f}x, "
        "exact cell-level reproduction)"
    )
    report(
        f"engine: {t_engine:8.3f}s   ({engine_speedup:6.1f}x, "
        "compiled hash/program lookups)"
    )
    report(
        f"steady-state batch ({len(big_batch)} rows): "
        f"{rows_per_sec:,.0f} rows/s"
    )

    record_result(
        "apply_throughput",
        test="engine_vs_relearn",
        rows=len(values),
        learn_seconds=round(t_learn, 4),
        replay_seconds=round(t_replay, 4),
        engine_seconds=round(t_engine, 4),
        engine_speedup=round(engine_speedup, 2),
        replay_speedup=round(replay_speedup, 2),
        steady_rows_per_sec=round(rows_per_sec, 1),
    )

    assert engine_speedup >= 10.0, (
        f"compiled engine must be >= 10x faster than re-learning "
        f"(got {engine_speedup:.1f}x)"
    )
