"""Figure 7 — recall of standardizing variant values vs the number of
groups confirmed, for Trifacta / Single / Group.

Paper shape: Group consistently wins — up to +0.3 over Trifacta and
+0.5 over Single (e.g. JournalTitle: 0.66 vs 0.38 vs 0.12); Single's
per-pair budget barely moves recall; Trifacta is a flat dotted line
(rules written once).
"""

import pytest

from repro.evaluation import (
    format_series,
    render_series_chart,
    run_method_series,
    run_trifacta_series,
)

from conftest import BUDGETS, CHECKPOINTS, print_banner, report

PAPER_FINAL_RECALL = {
    "AuthorList": {"group": 0.75, "single": 0.25, "trifacta": 0.45},
    "Address": {"group": 0.75, "single": 0.25, "trifacta": 0.6},
    "JournalTitle": {"group": 0.66, "single": 0.12, "trifacta": 0.38},
}


def _series_for(dataset):
    budget = BUDGETS[dataset.name]
    return [
        run_trifacta_series(dataset, budget),
        run_method_series(dataset, "single", budget),
        run_method_series(dataset, "group", budget),
    ]


@pytest.mark.parametrize("name", ["authorlist", "address", "journaltitle"])
def test_fig7_recall(benchmark, name, request):
    dataset = request.getfixturevalue(name)
    series = benchmark.pedantic(
        _series_for, args=(dataset,), rounds=1, iterations=1
    )
    print_banner(f"Figure 7 ({dataset.name}): recall vs #groups confirmed")
    report(format_series(series, "recall", CHECKPOINTS[dataset.name]))
    report(render_series_chart(series, "recall"))
    paper = PAPER_FINAL_RECALL[dataset.name]
    report(
        f"paper final recall: group~{paper['group']}, "
        f"single~{paper['single']}, trifacta~{paper['trifacta']}"
    )
    trifacta, single, group = (s.final() for s in series)
    # Shape assertions: Group beats both baselines on recall.
    assert group.recall > single.recall
    assert group.recall > trifacta.recall
