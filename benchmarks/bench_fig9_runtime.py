"""Figure 9 — group generation time for OneShot / EarlyTerm /
Incremental.

Paper shape (log-scale y): OneShot and EarlyTerm pay their entire
partitioning cost upfront (4,900s and 1,800s on AuthorList, in C++);
Incremental produces the first group after ~1.6s and pays per
invocation — an upfront-cost reduction of up to 3 orders of magnitude.

The absolute numbers here are pure-Python on synthetic slices; the
*ratios* are the reproduced result.  OneShot additionally honours the
search-expansion budget (DESIGN.md §5), so its measured cost is a lower
bound on the true exhaustive enumeration — the ordering between the
three methods is unaffected.
"""

import pytest

from repro.evaluation import format_runtime, run_grouping_runtime
from repro.datagen import address_dataset, authorlist_dataset, journaltitle_dataset

from conftest import BASE_SCALES, SCALE, print_banner, report

#: Figure 9 runs on reduced slices: OneShot is exponential by design.
FIG9_FACTOR = 0.35
MAX_GROUPS = 30

PAPER_UPFRONT = {
    "AuthorList": {"oneshot": 4900.0, "earlyterm": 1800.0, "incremental": 1.6},
}


def _curves(dataset):
    return {
        variant: run_grouping_runtime(dataset, variant, MAX_GROUPS)
        for variant in ("oneshot", "earlyterm", "incremental")
    }


@pytest.fixture(scope="module")
def fig9_datasets():
    return (
        authorlist_dataset(scale=BASE_SCALES["AuthorList"] * SCALE * FIG9_FACTOR),
        address_dataset(scale=BASE_SCALES["Address"] * SCALE * FIG9_FACTOR),
        journaltitle_dataset(
            scale=BASE_SCALES["JournalTitle"] * SCALE * FIG9_FACTOR
        ),
    )


def test_fig9_runtime(benchmark, fig9_datasets):
    all_curves = benchmark.pedantic(
        lambda: {d.name: _curves(d) for d in fig9_datasets},
        rounds=1,
        iterations=1,
    )
    for name, curves in all_curves.items():
        print_banner(
            f"Figure 9 ({name}): cumulative seconds until k groups available"
        )
        report(format_runtime(curves, (1, 5, 10, 20, MAX_GROUPS)))
        first_oneshot = curves["oneshot"][0].seconds
        first_early = curves["earlyterm"][0].seconds
        first_incr = curves["incremental"][0].seconds
        report(
            f"upfront cost: oneshot={first_oneshot:.2f}s "
            f"earlyterm={first_early:.2f}s incremental={first_incr:.3f}s "
            f"(paper AuthorList: 4900 / 1800 / 1.6)"
        )
        # Shape assertions: incremental's first group is far cheaper
        # than either upfront partitioning.
        assert first_incr < first_oneshot
        assert first_incr < first_early
