"""Extension bench — scalability of the incremental grouper.

Not a paper figure: a systems sanity check that the incremental
grouper's cost grows gracefully with dataset size (the paper's
largest dataset is ~56k records; our slices scale with
``REPRO_BENCH_SCALE``).  Reports candidates generated and time to the
first 10 groups across growing Address slices.
"""

import time

import pytest

from repro.core.incremental import IncrementalGrouper
from repro.datagen import address_dataset
from repro.evaluation import format_table
from repro.pipeline.standardize import Standardizer

from conftest import print_banner, report

SCALES = (0.05, 0.1, 0.2, 0.3)
K_GROUPS = 10


def _measure():
    rows = []
    for scale in SCALES:
        dataset = address_dataset(scale=scale)
        t0 = time.perf_counter()
        standardizer = Standardizer(dataset.fresh_table(), dataset.column)
        replacements = standardizer.store.replacements()
        gen_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        grouper = IncrementalGrouper(replacements)
        groups = list(grouper.groups(limit=K_GROUPS))
        group_time = time.perf_counter() - t0
        rows.append(
            (
                dataset.table.num_records,
                len(replacements),
                round(gen_time, 3),
                round(group_time, 3),
                groups[0].size if groups else 0,
            )
        )
    return rows


def test_scalability(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_banner(
        f"Extension: incremental grouping scalability (first {K_GROUPS} groups)"
    )
    report(
        format_table(
            ("records", "candidates", "gen s", "group s", "largest"),
            rows,
        )
    )
    # Graceful growth: 6x records must not cost 100x grouping time.
    smallest, largest = rows[0], rows[-1]
    if smallest[3] > 0.01:
        assert largest[3] / smallest[3] < 100 * (largest[0] / smallest[0])
