"""Ablation — robustness to reviewer errors.

The paper claims the method "is robust to small numbers of errors as
verified in our experiment" (Section 1): the human is not required to
exhaustively check all pairs.  This bench injects decision-flipping
noise into the oracle and tracks how gracefully precision/recall
degrade.
"""

import pytest

from repro.datagen import address_dataset
from repro.evaluation import format_table, run_method_series

from conftest import print_banner, report

BUDGET = 60
ERROR_RATES = (0.0, 0.05, 0.1, 0.2)


def _measure():
    dataset = address_dataset(scale=0.15)
    rows = []
    for rate in ERROR_RATES:
        final = run_method_series(
            dataset,
            "group",
            BUDGET,
            sample_size=500,
            oracle_error_rate=rate,
        ).final()
        rows.append((f"{rate:.0%}", final.precision, final.recall, final.mcc))
    return rows


def test_ablation_oracle_noise(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_banner("Ablation: reviewer error injection (robustness claim, §1)")
    report(format_table(("error rate", "precision", "recall", "mcc"), rows))
    clean = rows[0]
    small_noise = rows[1]  # 5%
    # Small reviewer error must not collapse the result.
    assert small_noise[3] > 0.5 * clean[3]
