"""Figure 8 — Matthews correlation coefficient vs the number of groups
confirmed, for Trifacta / Single / Group.

Paper shape: Group achieves the best MCC, beating Trifacta by up to 0.2
and Single by up to 0.4 (JournalTitle: 0.57 vs 0.34 vs 0.18).
"""

import pytest

from repro.evaluation import (
    format_series,
    render_series_chart,
    run_method_series,
    run_trifacta_series,
)

from conftest import BUDGETS, CHECKPOINTS, print_banner, report

PAPER_FINAL_MCC = {
    "AuthorList": {"group": 0.8, "single": 0.45, "trifacta": 0.6},
    "Address": {"group": 0.8, "single": 0.45, "trifacta": 0.65},
    "JournalTitle": {"group": 0.57, "single": 0.18, "trifacta": 0.34},
}


def _series_for(dataset):
    budget = BUDGETS[dataset.name]
    return [
        run_trifacta_series(dataset, budget),
        run_method_series(dataset, "single", budget),
        run_method_series(dataset, "group", budget),
    ]


@pytest.mark.parametrize("name", ["authorlist", "address", "journaltitle"])
def test_fig8_mcc(benchmark, name, request):
    dataset = request.getfixturevalue(name)
    series = benchmark.pedantic(
        _series_for, args=(dataset,), rounds=1, iterations=1
    )
    print_banner(f"Figure 8 ({dataset.name}): MCC vs #groups confirmed")
    report(format_series(series, "mcc", CHECKPOINTS[dataset.name]))
    report(render_series_chart(series, "mcc"))
    paper = PAPER_FINAL_MCC[dataset.name]
    report(
        f"paper final MCC: group~{paper['group']}, "
        f"single~{paper['single']}, trifacta~{paper['trifacta']}"
    )
    trifacta, single, group = (s.final() for s in series)
    assert group.mcc > single.mcc
    assert group.mcc >= trifacta.mcc
