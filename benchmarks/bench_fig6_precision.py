"""Figure 6 — precision of standardizing variant values vs the number
of groups confirmed, for Trifacta / Single / Group on all three
datasets.

Paper shape: every method stays above ~0.97; Single is exactly 1.0
(per-pair confirmation); Group ends above 0.99; Trifacta's global
regexes cost it a little precision.
"""

import pytest

from repro.evaluation import (
    format_series,
    render_series_chart,
    run_method_series,
    run_trifacta_series,
)

from conftest import BUDGETS, CHECKPOINTS, print_banner, report

PAPER_FINAL_PRECISION = {
    "AuthorList": {"group": 0.99, "single": 1.0, "trifacta": 0.97},
    "Address": {"group": 0.995, "single": 1.0, "trifacta": 0.97},
    "JournalTitle": {"group": 0.99, "single": 1.0, "trifacta": 0.97},
}


def _series_for(dataset):
    budget = BUDGETS[dataset.name]
    return [
        run_trifacta_series(dataset, budget),
        run_method_series(dataset, "single", budget),
        run_method_series(dataset, "group", budget),
    ]


@pytest.mark.parametrize("name", ["authorlist", "address", "journaltitle"])
def test_fig6_precision(benchmark, name, request):
    dataset = request.getfixturevalue(name)
    series = benchmark.pedantic(
        _series_for, args=(dataset,), rounds=1, iterations=1
    )
    print_banner(f"Figure 6 ({dataset.name}): precision vs #groups confirmed")
    report(format_series(series, "precision", CHECKPOINTS[dataset.name]))
    report(render_series_chart(series, "precision"))
    paper = PAPER_FINAL_PRECISION[dataset.name]
    report(
        f"paper final precision: group>={paper['group']}, "
        f"single={paper['single']}, trifacta>={paper['trifacta']}"
    )
    final_group = series[2].final()
    final_single = series[1].final()
    # Shape assertions: human-in-the-loop precision stays high.
    assert final_single.precision >= 0.99
    assert final_group.precision >= 0.9
