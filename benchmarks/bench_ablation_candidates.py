"""Ablation — token-level candidate generation (Appendix A).

Whole-value pairs alone miss the fine-grained families ("Wisconsin ->
WI" inside longer addresses); the LCS-aligned token-level candidates
are what make them reachable.  This ablation compares final recall at
equal budget with token-level candidates on vs off.
"""

import pytest
from dataclasses import replace as dc_replace

from repro.config import DEFAULT_CONFIG
from repro.datagen import address_dataset
from repro.evaluation import format_table, run_method_series

from conftest import print_banner, report

BUDGET = 60


def _measure():
    dataset = address_dataset(scale=0.15)
    with_tokens = run_method_series(
        dataset, "group", BUDGET, config=DEFAULT_CONFIG, sample_size=500
    ).final()
    without = run_method_series(
        dataset,
        "group",
        BUDGET,
        config=dc_replace(DEFAULT_CONFIG, token_level_candidates=False),
        sample_size=500,
    ).final()
    return with_tokens, without


def test_ablation_token_level_candidates(benchmark):
    with_tokens, without = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print_banner("Ablation: token-level candidates (Appendix A)")
    report(
        format_table(
            ("setting", "precision", "recall", "mcc"),
            [
                ("whole-value + token-level", with_tokens.precision,
                 with_tokens.recall, with_tokens.mcc),
                ("whole-value only", without.precision,
                 without.recall, without.mcc),
            ],
        )
    )
    assert with_tokens.recall >= without.recall - 0.02