"""Table 8 — golden-record precision of majority consensus before and
after standardizing variant values.

Paper values:

    dataset        before   after
    AuthorList     .51      .65
    Address        .32      .47
    JournalTitle   .335     .840

Shape: standardization improves MC precision on every dataset, most
dramatically on the variant-heavy JournalTitle.
"""

import pytest

from repro.evaluation import format_table, run_consolidation

from conftest import BUDGETS, print_banner, report

PAPER = {
    "AuthorList": (0.51, 0.65),
    "Address": (0.32, 0.47),
    "JournalTitle": (0.335, 0.84),
}


def _measure(all_datasets):
    rows = []
    for dataset in all_datasets:
        before, after = run_consolidation(
            dataset, budget=BUDGETS[dataset.name], fusion="majority"
        )
        paper_before, paper_after = PAPER[dataset.name]
        rows.append(
            (
                dataset.name,
                before.precision,
                paper_before,
                after.precision,
                paper_after,
            )
        )
    return rows


def test_table8_mc_precision(benchmark, all_datasets):
    rows = benchmark.pedantic(
        _measure, args=(all_datasets,), rounds=1, iterations=1
    )
    print_banner("Table 8: MC golden-record precision before/after (vs paper)")
    report(
        format_table(
            ("dataset", "before", "paper", "after", "paper"), rows
        )
    )
    for _, before, _, after, _ in rows:
        assert after >= before  # standardization never hurts MC
