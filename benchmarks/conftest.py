"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the evaluation
section (Section 8) and prints the measured rows next to the paper's
numbers.  Dataset sizes honour ``REPRO_BENCH_SCALE`` (default 1.0 =
laptop-friendly slices; raise it to stress the system).
"""

from __future__ import annotations

import os

import pytest

from repro.datagen import address_dataset, authorlist_dataset, journaltitle_dataset

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Per-dataset generator scale at SCALE=1.0 (chosen so the full bench
#: suite completes in minutes on a laptop while preserving the paper's
#: relative shapes).
BASE_SCALES = {
    "AuthorList": 0.5,
    "Address": 0.35,
    "JournalTitle": 0.5,
}

#: Human-verification budgets.  The paper uses 200 / 100 / 100 against
#: its full-size datasets; these are scaled down with the data so the
#: budget remains the binding constraint (budget << #candidates),
#: which is the regime all of Section 8.1's comparisons live in.
BUDGETS = {
    "AuthorList": 80,
    "Address": 100,
    "JournalTitle": 60,
}

#: Checkpoints printed for the figure series.
CHECKPOINTS = {
    "AuthorList": (0, 10, 20, 40, 60, 80),
    "Address": (0, 20, 40, 60, 80, 100),
    "JournalTitle": (0, 10, 20, 30, 45, 60),
}


@pytest.fixture(scope="session")
def authorlist():
    return authorlist_dataset(scale=BASE_SCALES["AuthorList"] * SCALE)


@pytest.fixture(scope="session")
def address():
    return address_dataset(scale=BASE_SCALES["Address"] * SCALE)


@pytest.fixture(scope="session")
def journaltitle():
    return journaltitle_dataset(scale=BASE_SCALES["JournalTitle"] * SCALE)


@pytest.fixture(scope="session")
def all_datasets(authorlist, address, journaltitle):
    return (authorlist, address, journaltitle)


#: Collected report blocks, flushed into pytest's terminal summary so
#: the regenerated tables/figures survive output capturing.
REPORTS = []


def report(text: str = "") -> None:
    print(text)
    REPORTS.append(str(text))


def print_banner(title: str) -> None:
    report()
    report("=" * 72)
    report(title)
    report("=" * 72)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "paper reproduction report")
    for line in REPORTS:
        for sub in str(line).splitlines() or [""]:
            terminalreporter.write_line(sub)
