"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the evaluation
section (Section 8) and prints the measured rows next to the paper's
numbers.  Dataset sizes honour ``REPRO_BENCH_SCALE`` (default 1.0 =
laptop-friendly slices; raise it to stress the system).

Results are also **machine-readable**: every ``bench_<name>.py`` run
appends one JSON line per test (timing, outcome) to
``benchmarks/results/BENCH_<name>.json``, and benchmarks with headline
numbers (speedups, byte counts, throughputs) append richer rows via
:func:`record_result`.  The files are JSON-lines, append-only, and
uploaded as CI artifacts, so the perf trajectory of the repository is
a dataset instead of folklore.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional

import pytest

from repro.datagen import address_dataset, authorlist_dataset, journaltitle_dataset

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Where the per-benchmark JSON-lines result files accumulate.
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Provenance fields newer rows carry; :func:`load_results` backfills
#: them as ``None`` on rows recorded before the field existed, so
#: trajectory consumers never KeyError across schema generations.
PROVENANCE_FIELDS = ("git", "python", "cpus", "scale")

_GIT_SHA: Optional[str] = None
_GIT_SHA_RESOLVED = False


def _git_sha() -> Optional[str]:
    """The repo's short HEAD SHA, or ``None`` outside a usable git
    checkout (results stay recordable from tarballs and CI caches)."""
    global _GIT_SHA, _GIT_SHA_RESOLVED
    if _GIT_SHA_RESOLVED:
        return _GIT_SHA
    _GIT_SHA_RESOLVED = True
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=10,
        )
        if proc.returncode == 0:
            _GIT_SHA = proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        _GIT_SHA = None
    return _GIT_SHA


def record_result(bench: str, **fields) -> dict:
    """Append one result row to ``results/BENCH_<bench>.json``.

    Every row carries the timestamp, bench scale, interpreter, git
    SHA, and CPU count, so rows from different machines/runs/commits
    stay comparable; ``fields`` adds the benchmark's own numbers
    (timings, sizes, speedups).  Rows are JSON-lines — one object per
    line, append-only.
    """
    row = {
        "bench": bench,
        "timestamp": round(time.time(), 3),
        "scale": SCALE,
        "python": platform.python_version(),
        "git": _git_sha(),
        "cpus": os.cpu_count(),
        **fields,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{bench}.json"
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def load_results(bench: str) -> List[dict]:
    """Read ``results/BENCH_<bench>.json`` back as a list of rows.

    Backfill-tolerant in both directions: rows recorded before a
    provenance field existed get it as ``None`` (so consumers can rely
    on the current schema), and corrupt lines — a torn tail from a
    killed run, a merge artifact — are skipped instead of sinking the
    whole trajectory.
    """
    path = RESULTS_DIR / f"BENCH_{bench}.json"
    if not path.exists():
        return []
    rows: List[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if not isinstance(row, dict):
            continue
        for field in PROVENANCE_FIELDS:
            row.setdefault(field, None)
        rows.append(row)
    return rows


def pytest_runtest_logreport(report):
    """Auto-append a timing row for every benchmark test call, so even
    benchmarks without headline numbers feed the trajectory."""
    if report.when != "call":
        return
    module = Path(str(report.fspath)).stem
    if not module.startswith("bench_"):
        return
    record_result(
        module[len("bench_") :],
        test=report.nodeid.split("::", 1)[-1],
        seconds=round(report.duration, 4),
        outcome=report.outcome,
    )

def synthetic_exact_model(
    num_rules: int, name: str = "synthetic-exact", salt: str = ""
):
    """A model of ``num_rules`` whole-value exact rules, for benchmarks
    that need compile cost proportional to rule count (chain-composing
    E exact rules is O(E**2)) without paying a full learning run.

    Programs are constants, so the engine's program index stays empty
    and the compiled artifact is exactly the exact-table shape the
    sidecar benches care about.
    """
    from repro.core.functions import ConstantStr
    from repro.core.program import Program
    from repro.pipeline.oracle import FORWARD
    from repro.serve.model import (
        ConfirmedGroup,
        ConfirmedMember,
        TransformationModel,
    )

    groups = []
    for i in range(num_rules):
        rhs = f"Clean{salt} Value {i:05d}"
        groups.append(
            ConfirmedGroup(
                program=Program((ConstantStr(rhs),)),
                direction=FORWARD,
                members=(
                    ConfirmedMember(
                        lhs=f"dirty{salt} value {i:05d}", rhs=rhs
                    ),
                ),
            )
        )
    return TransformationModel(name=name, column="value", groups=groups)


#: Per-dataset generator scale at SCALE=1.0 (chosen so the full bench
#: suite completes in minutes on a laptop while preserving the paper's
#: relative shapes).
BASE_SCALES = {
    "AuthorList": 0.5,
    "Address": 0.35,
    "JournalTitle": 0.5,
}

#: Human-verification budgets.  The paper uses 200 / 100 / 100 against
#: its full-size datasets; these are scaled down with the data so the
#: budget remains the binding constraint (budget << #candidates),
#: which is the regime all of Section 8.1's comparisons live in.
BUDGETS = {
    "AuthorList": 80,
    "Address": 100,
    "JournalTitle": 60,
}

#: Checkpoints printed for the figure series.
CHECKPOINTS = {
    "AuthorList": (0, 10, 20, 40, 60, 80),
    "Address": (0, 20, 40, 60, 80, 100),
    "JournalTitle": (0, 10, 20, 30, 45, 60),
}


@pytest.fixture(scope="session")
def authorlist():
    return authorlist_dataset(scale=BASE_SCALES["AuthorList"] * SCALE)


@pytest.fixture(scope="session")
def address():
    return address_dataset(scale=BASE_SCALES["Address"] * SCALE)


@pytest.fixture(scope="session")
def journaltitle():
    return journaltitle_dataset(scale=BASE_SCALES["JournalTitle"] * SCALE)


@pytest.fixture(scope="session")
def all_datasets(authorlist, address, journaltitle):
    return (authorlist, address, journaltitle)


#: Collected report blocks, flushed into pytest's terminal summary so
#: the regenerated tables/figures survive output capturing.
REPORTS = []


def report(text: str = "") -> None:
    print(text)
    REPORTS.append(str(text))


def print_banner(title: str) -> None:
    report()
    report("=" * 72)
    report(title)
    report("=" * 72)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "paper reproduction report")
    for line in REPORTS:
        for sub in str(line).splitlines() or [""]:
            terminalreporter.write_line(sub)
