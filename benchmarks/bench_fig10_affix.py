"""Figure 10 (Appendix F) — recall with and without the affix string
functions.

Paper shape: Affix always produces recall >= NoAffix (some replacements
cannot be grouped without Prefix/Suffix, e.g. Street -> St); precision
stays ~100% either way and the MCC mirrors the recall.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.evaluation import format_series, render_series_chart, run_method_series

from conftest import BUDGETS, CHECKPOINTS, print_banner, report


def _series_for(dataset):
    budget = BUDGETS[dataset.name]
    affix = run_method_series(dataset, "group", budget, config=DEFAULT_CONFIG)
    affix.method = "affix"
    noaffix = run_method_series(
        dataset, "group", budget, config=DEFAULT_CONFIG.without_affix()
    )
    noaffix.method = "noaffix"
    return [noaffix, affix]


@pytest.mark.parametrize("name", ["authorlist", "address", "journaltitle"])
def test_fig10_affix_recall(benchmark, name, request):
    dataset = request.getfixturevalue(name)
    series = benchmark.pedantic(
        _series_for, args=(dataset,), rounds=1, iterations=1
    )
    print_banner(
        f"Figure 10 ({dataset.name}): recall with/without affix functions"
    )
    report(format_series(series, "recall", CHECKPOINTS[dataset.name]))
    report(render_series_chart(series, "recall"))
    noaffix, affix = (s.final() for s in series)
    report(
        f"final recall: affix={affix.recall:.3f} noaffix={noaffix.recall:.3f} "
        "(paper: Affix always >= NoAffix)"
    )
    # Small-sample noise tolerance: affix must not lose.
    assert affix.recall >= noaffix.recall - 0.02
