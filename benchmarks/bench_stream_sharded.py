"""Sharded streaming consolidation: N learner shards vs one process.

The incremental consolidator already avoids re-learning; what remains
per batch is real CPU — graph construction and pivot search inside the
grouping feed, candidate-pair alignment, blocked similarity matching.
``--shards N`` fans exactly those stages across N persistent worker
processes (`repro.stream.shards`), while the oracle, the replacement
store, and publication stay in the single parent.

Because every parallel stage is a pure computation merged in canonical
order, speed is the *only* thing sharding may change.  This benchmark
asserts all three claims:

* **identical standardization** — the sharded stream's final per-record
  values equal the single-process stream's, and the published group
  sequences match;
* **identical oracle cost** — the same number of questions in the same
  per-batch distribution (sharding must not add a single question);
* **>= 2x wall-clock speedup** on a multi-core box (asserted when >= 4
  CPUs are available; reported, not asserted, on smaller machines where
  the parallelism has nowhere to run);

plus the durability property that rides on the same release:

* **restart-resume, zero repeat questions** — a consolidator restarted
  over the same stream with the persisted decision log and registry
  asks nothing;

and the IPC property of shard-resident blocking state:

* **per-batch shipped bytes are O(new values)** — each member value
  crosses to a shard worker once, when it first enters one of that
  shard's blocks; match traffic afterwards carries candidate record
  ids only, so per-batch bytes stay flat while the resident frontier
  (and the candidate-pair count) keeps growing.
"""

import json
import os
import time

import pytest

from repro.data.table import Record
from repro.datagen import address_dataset, dataset_stream
from repro.datagen.base import GeneratorSpec
from repro.serve.registry import ModelRegistry
from repro.stream import StreamConsolidator, ground_truth_oracle_factory

from conftest import SCALE, print_banner, record_result, report

SEED = 31
N_BATCHES = 4
BUDGET = 60
SHARDS = min(4, os.cpu_count() or 1)
#: Speedup is only asserted where the shards have cores to run on.
ASSERT_SPEEDUP_CPUS = 4
MIN_SPEEDUP = 2.0
#: Shared CI runners report >= 4 CPUs but cannot promise dedicated
#: cores; REPRO_BENCH_ASSERT_SPEEDUP=0 keeps the equivalence
#: assertions while reporting (not asserting) the speedup.
ASSERT_SPEEDUP = os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP", "1") != "0"

SPEC = GeneratorSpec(
    n_clusters=max(8, int(160 * SCALE)),
    mean_cluster_size=6.0,
    conflict_rate=0.15,
    variant_rate=0.85,
    seed=SEED,
)


@pytest.fixture(scope="module")
def stream():
    dataset = address_dataset(spec=SPEC, seed=SEED)
    return dataset_stream(dataset, batches=N_BATCHES, seed=SEED)


def run(stream, registry=None, budget=BUDGET, **kwargs):
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=SEED
        ),
        key_attribute=stream.key_column,
        budget_per_batch=budget,
        registry=registry,
        model_name="sharded-bench",
        use_engine=False,  # identical machinery both sides: exact compare
        **kwargs,
    )
    with consolidator:
        start = time.perf_counter()
        consolidator.run(stream.batches)
        elapsed = time.perf_counter() - start
        questions = [r.questions_asked for r in consolidator.reports]
        final = {
            r.rid: r.values[stream.column]
            for c in consolidator.table.clusters
            for r in c.records
        }
        groups = [
            g.to_dict() for g in consolidator.build_model().groups
        ]
    return elapsed, questions, final, groups


def test_sharded_stream_speedup_and_equivalence(stream, tmp_path):
    t_single, q_single, final_single, groups_single = run(
        stream, shards=1
    )
    t_sharded, q_sharded, final_sharded, groups_sharded = run(
        stream, shards=SHARDS, shard_processes=True
    )

    # -- correctness: sharding changes wall-clock, nothing else ----------
    assert q_sharded == q_single, (
        f"sharding must not change the oracle bill "
        f"({q_sharded} vs {q_single})"
    )
    assert final_sharded == final_single, (
        "sharded stream must converge to the identical standardization"
    )
    assert json.dumps(groups_sharded, sort_keys=True) == json.dumps(
        groups_single, sort_keys=True
    ), "published group sequences must be identical"

    speedup = t_single / t_sharded if t_sharded > 0 else float("inf")
    cpus = os.cpu_count() or 1

    print_banner(
        f"Sharded streaming learner: {SHARDS} shards vs single process"
    )
    report(
        f"stream: {stream.num_records} records in {N_BATCHES} batches, "
        f"budget {BUDGET}/batch, {cpus} CPUs"
    )
    report(
        f"single process : {t_single:8.3f}s   questions/batch: {q_single}"
    )
    report(
        f"{SHARDS} shard procs  : {t_sharded:8.3f}s   "
        f"questions/batch: {q_sharded}"
    )
    report(
        f"speedup: {speedup:6.2f}x   identical standardization: yes   "
        f"extra questions: 0"
    )

    record_result(
        "stream_sharded",
        test="speedup",
        shards=SHARDS,
        cpus=cpus,
        records=stream.num_records,
        single_seconds=round(t_single, 4),
        sharded_seconds=round(t_sharded, 4),
        speedup=round(speedup, 3),
        identical_models=groups_sharded == groups_single,
        extra_questions=sum(q_sharded) - sum(q_single),
    )

    if cpus >= ASSERT_SPEEDUP_CPUS and ASSERT_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"{SHARDS} learner shards on {cpus} CPUs must be >= "
            f"{MIN_SPEEDUP}x faster than the single-process "
            f"consolidator (got {speedup:.2f}x)"
        )
    elif not ASSERT_SPEEDUP:
        report(
            "(REPRO_BENCH_ASSERT_SPEEDUP=0: speedup reported, not "
            "asserted — equivalence still asserted above)"
        )
    else:
        report(
            f"(speedup assertion needs >= {ASSERT_SPEEDUP_CPUS} CPUs; "
            f"this box has {cpus} — equivalence still asserted above)"
        )


def test_restart_resume_zero_repeat_questions(stream, tmp_path):
    # Unbounded budget: the first run judges *all* of the stream's
    # variation, so the decision log fully covers the replay and every
    # restart question would necessarily be a repeat.
    registry = ModelRegistry(tmp_path / "registry")
    _, q_first, final_first, _ = run(
        stream, registry=registry, budget=10**9
    )
    assert sum(q_first) > 0

    t_resume, q_resume, final_resume, _ = run(
        stream, registry=registry, budget=10**9
    )

    report(
        f"restart-resume: first run asked {sum(q_first)} questions, "
        f"restarted run asked {sum(q_resume)} "
        f"(replayed decision log) in {t_resume:.3f}s"
    )
    record_result(
        "stream_sharded",
        test="restart_resume",
        first_questions=sum(q_first),
        resume_questions=sum(q_resume),
        resume_seconds=round(t_resume, 4),
    )
    assert sum(q_resume) == 0, (
        f"a restarted stream with a durable decision cache must ask "
        f"zero repeat questions (asked {sum(q_resume)})"
    )
    assert final_resume == final_first


def test_shard_resident_state_ships_only_new_values():
    """Per-batch IPC must be O(new values): constant-size batches ship
    a constant number of values (and near-constant bytes) while the
    resident comparison frontier — and with it the candidate-pair
    count — keeps growing.  Before shard-resident blocking state, the
    parent re-shipped every candidate's *value* each batch, so bytes
    grew with the frontier."""
    import random

    rng = random.Random(SEED)
    n_batches = 6
    batch_size = max(30, int(120 * SCALE))

    def batch(index):
        # Everything shares the "common" token: blocks keep thickening
        # with stream length (the worst case for value re-shipping).
        return [
            Record(
                f"b{index}r{i}",
                {
                    "name": f"common tok{i % 9} row{i} "
                    f"x{rng.randrange(100)}"
                },
            )
            for i in range(batch_size)
        ]

    consolidator = StreamConsolidator(
        column="name",
        oracle_factory=lambda c: None,
        attribute="name",
        similarity_threshold=0.9,
        budget_per_batch=0,
        use_engine=False,
        shards=min(4, os.cpu_count() or 1) if (os.cpu_count() or 1) > 1 else 2,
        model_name="resident-bytes",
        persist_decisions=False,
        max_block_size=10**9,
        block_retention=64,
    )
    with consolidator:
        reports = [
            consolidator.process_batch(batch(i)) for i in range(n_batches)
        ]
        used_processes = (
            consolidator.pool is not None
            and consolidator.pool.uses_processes
        )

    pairs = [r.pairs_compared for r in reports]
    values = [r.values_shipped for r in reports]
    bytes_shipped = [r.bytes_shipped for r in reports]

    print_banner("Shard-resident blocking state: per-batch bytes shipped")
    report(
        f"stream: {n_batches} batches x {batch_size} records, "
        f"{consolidator.shards} shards, block retention 64"
    )
    report(f"candidate pairs / batch : {pairs}")
    report(f"values shipped / batch  : {values}")
    report(f"bytes shipped / batch   : {bytes_shipped}")
    record_result(
        "stream_sharded",
        test="resident_bytes",
        batch_size=batch_size,
        pairs=pairs,
        values_shipped=values,
        bytes_shipped=bytes_shipped,
    )

    # The frontier grows (more candidates per batch)...
    assert pairs[-1] > pairs[0] * 1.5
    # ... while shipped values stay O(new values per batch): bounded
    # by batch x shards and flat (only per-batch token-mix jitter)
    # instead of tracking the frontier like pre-resident shipping did.
    assert max(values) <= batch_size * consolidator.shards
    assert max(values) <= min(values) * 1.1, (
        f"values shipped must not grow with the resident frontier: "
        f"{values}"
    )
    # Bytes may creep with candidate-id lists but must stay decoupled
    # from the frontier's value mass (retention bounds the id lists).
    # Byte counters measure actual IPC, so they are only meaningful on
    # the worker-process backend (the inline fallback ships nothing).
    if used_processes:
        assert bytes_shipped[-1] < bytes_shipped[1] * 2, (
            f"per-batch bytes must stay O(new values): {bytes_shipped}"
        )
    else:
        report(
            "(inline shard backend: no IPC, byte assertion skipped — "
            "values/pairs assertions above still hold)"
        )
