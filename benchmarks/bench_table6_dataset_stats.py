"""Table 6 — dataset details.

Paper values (full-size datasets):

    dataset        avg/min/max cluster   distinct pairs  variant%  conflict%
    AuthorList     26.9 / 1 / 159        51,538          26.5      73.5
    Address         5.8 / 1 / 1196       80,451          18.0      82.0
    JournalTitle    1.8 / 1 / 203        81,350          74.0      26.0

Our datasets are laptop-scale synthetic stand-ins (DESIGN.md §3); this
bench regenerates the same row format so the *mix* (variant- vs
conflict-heavy) can be compared directly.
"""

from repro.data import dataset_stats
from repro.evaluation import format_table

from conftest import print_banner, report

PAPER_ROWS = {
    "AuthorList": (26.9, 1, 159, 51538, 26.5, 73.5),
    "Address": (5.8, 1, 1196, 80451, 18.0, 82.0),
    "JournalTitle": (1.8, 1, 203, 81350, 74.0, 26.0),
}


def _measure(all_datasets):
    rows = []
    for dataset in all_datasets:
        stats = dataset_stats(dataset.table, dataset.column, dataset.labeler())
        paper = PAPER_ROWS[dataset.name]
        rows.append(
            (
                dataset.name,
                f"{stats.avg_cluster_size:.1f}/{stats.min_cluster_size}"
                f"/{stats.max_cluster_size}",
                f"{paper[0]}/{paper[1]}/{paper[2]}",
                stats.distinct_value_pairs,
                paper[3],
                round(stats.variant_pair_pct * 100, 1),
                paper[4],
                round(stats.conflict_pair_pct * 100, 1),
                paper[5],
            )
        )
    return rows


def test_table6_dataset_stats(benchmark, all_datasets):
    rows = benchmark.pedantic(_measure, args=(all_datasets,), rounds=1, iterations=1)
    print_banner("Table 6: dataset details (measured vs paper)")
    report(
        format_table(
            (
                "dataset",
                "cluster avg/min/max",
                "paper",
                "distinct pairs",
                "paper",
                "variant %",
                "paper",
                "conflict %",
                "paper",
            ),
            rows,
        )
    )
