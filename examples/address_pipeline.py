"""Address standardization end to end — the paper's headline scenario.

Generates the synthetic Address dataset (the stand-in for the 17,497
NYC discretionary-funding applications clustered by EIN), runs the
human-in-the-loop standardization with a ground-truth-backed oracle on
a 100-group budget, and reports precision / recall / MCC over sampled
labeled pairs plus the golden-record improvement for majority
consensus — i.e., one column each of Figures 6-8 and Table 8.

Run:  python examples/address_pipeline.py [scale]
"""

from __future__ import annotations

import sys

from repro.datagen import address_dataset
from repro.data import dataset_stats
from repro.evaluation import run_consolidation, run_method_series


def main(scale: float = 0.15) -> None:
    dataset = address_dataset(scale=scale)
    stats = dataset_stats(dataset.table, dataset.column, dataset.labeler())
    print(f"dataset: {dataset.table}")
    print(
        f"  cluster size avg/min/max = {stats.avg_cluster_size:.1f}"
        f"/{stats.min_cluster_size}/{stats.max_cluster_size}"
    )
    print(
        f"  distinct value pairs = {stats.distinct_value_pairs}, "
        f"variant = {stats.variant_pair_pct:.0%}, "
        f"conflict = {stats.conflict_pair_pct:.0%}"
    )

    print("\nstandardizing with a 100-group budget ...")
    series = run_method_series(dataset, "group", budget=100, sample_size=500)
    for point in series.points:
        if point.confirmed % 20 == 0:
            print(
                f"  {point.confirmed:3d} groups: precision={point.precision:.3f} "
                f"recall={point.recall:.3f} mcc={point.mcc:.3f}"
            )
    final = series.final()
    print(
        f"final: precision={final.precision:.3f} recall={final.recall:.3f} "
        f"mcc={final.mcc:.3f}"
    )

    print("\ngolden records via majority consensus (Table 8) ...")
    before, after = run_consolidation(dataset, budget=100)
    print(f"  MC precision before standardization: {before.precision:.3f}")
    print(f"  MC precision after  standardization: {after.precision:.3f}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.15)
