"""Learn once, apply forever: the ``repro.serve`` workflow.

1. Run the human-in-the-loop standardization on a synthetic Address
   sample and persist everything it learned as a versioned model;
2. reload the model and standardize a *fresh* table with the compiled
   O(N) apply engine — no graphs, no pivot search, no human;
3. answer a couple of transform requests the way the ``serve`` worker
   would (JSON in, JSON out).

Run:  python examples/learn_apply_serve.py [scale]
"""

from __future__ import annotations

import io
import json
import sys
import tempfile
from pathlib import Path

from repro import ApplyEngine, ModelRegistry, Standardizer, build_model
from repro.datagen import address_dataset
from repro.pipeline.oracle import GroundTruthOracle
from repro.serve import serve_forever


def main(scale: float = 0.08) -> None:
    # 1. Learn and persist.
    dataset = address_dataset(scale=scale, seed=11)
    table = dataset.fresh_table()
    standardizer = Standardizer(table, dataset.column)
    oracle = GroundTruthOracle(dataset.canonical, standardizer.store, seed=11)
    log = standardizer.run(oracle, budget=40)
    model = build_model(
        log,
        dataset.column,
        name="address",
        provenance={"dataset": dataset.name, "seed": 11, "scale": scale},
    )
    registry = ModelRegistry(Path(tempfile.mkdtemp(prefix="repro_models_")))
    path = registry.save(model)
    print(f"learned:  {model.describe()}")
    print(f"saved:    {path}")

    # 2. Reload and batch-apply to fresh data.
    engine = ApplyEngine(registry.load("address"))
    fresh = dataset.fresh_table()
    changed = engine.apply_table(fresh)
    stats = engine.stats()
    print(
        f"applied:  {stats.rows} rows, {len(changed)} cells changed "
        f"(exact={stats.exact_hits} program={stats.program_hits} "
        f"token={stats.token_hits})"
    )

    # 3. The serve protocol, driven in-memory.
    requests = "\n".join(
        json.dumps(r)
        for r in (
            {"op": "apply", "value": "5 Main St, 10001 New York"},
            {"op": "stats"},
            {"op": "shutdown"},
        )
    )
    responses = io.StringIO()
    serve_forever(engine, io.StringIO(requests + "\n"), responses)
    print("serve protocol:")
    for line in responses.getvalue().splitlines():
        print(f"  {line[:72]}")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.08)
