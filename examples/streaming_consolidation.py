"""Streaming consolidation: batches in, model versions out.

Records arrive in batches; each batch is folded into persistent
consolidation state instead of re-clustering and re-learning from
scratch.  The current model standardizes arrivals first (the serve fast
path), cached oracle decisions absorb repeated variation for free, only
genuinely novel variation is reviewed, and every batch of new
confirmations publishes the next model version into a registry with the
serving engine hot-reloaded in place.

Run::

    python examples/streaming_consolidation.py [scale]
"""

import sys
import tempfile
from pathlib import Path

from repro.datagen import address_dataset, dataset_stream
from repro.serve import ModelRegistry
from repro.stream import (
    DriftMonitor,
    StreamConsolidator,
    ground_truth_oracle_factory,
)


def main(scale: float = 0.08) -> None:
    seed = 11
    dataset = address_dataset(scale=scale, seed=seed)
    stream = dataset_stream(dataset, batches=4, seed=seed)
    print(
        f"stream: {stream.num_records} records arriving in "
        f"{len(stream.batches)} batches ({dataset.name})"
    )

    registry_root = Path(tempfile.mkdtemp(prefix="repro-stream-"))
    consolidator = StreamConsolidator(
        column=stream.column,
        oracle_factory=ground_truth_oracle_factory(
            stream.canonical_by_rid, seed=seed
        ),
        key_attribute=stream.key_column,
        budget_per_batch=60,
        registry=ModelRegistry(registry_root),
        model_name="address-stream",
        monitor=DriftMonitor(window=3, miss_rate_threshold=0.8),
    )

    for batch in stream.batches:
        report = consolidator.process_batch(batch)
        print("  " + report.describe())

    print(
        f"done: {consolidator.questions_asked} oracle questions asked, "
        f"{consolidator.questions_saved} saved by reusing prior "
        f"decisions"
    )
    registry = ModelRegistry(registry_root)
    print(
        f"published versions: {registry.catalog()} "
        f"(under {registry_root})"
    )
    engine = consolidator.engine
    if engine is not None and engine.exact:
        example = next(iter(engine.exact))
        print(
            f"serving engine is live at "
            f"{engine.model.groups_confirmed} groups; "
            f"{example!r} -> {engine.transform(example)!r}"
        )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.08)
