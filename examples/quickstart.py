"""Quickstart: group candidate replacements and standardize a tiny table.

Reproduces the paper's running example (Tables 1-2, Figure 2): six
clustered records whose Name and Address values carry variant formats,
standardized by confirming algorithm-generated groups.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ApproveAllOracle,
    ClusterTable,
    IncrementalGrouper,
    Record,
    Replacement,
    Standardizer,
)


def grouping_demo() -> None:
    """Figure 2: grouping candidate replacements by transformation."""
    print("=== Unsupervised grouping (Figure 2) ===")
    candidates = [
        Replacement("Lee, Mary", "M. Lee"),
        Replacement("Smith, James", "J. Smith"),
        Replacement("Lee, Mary", "Mary Lee"),
        Replacement("Smith, James", "James Smith"),
        Replacement("Mary Lee", "M. Lee"),
        Replacement("James Smith", "J. Smith"),
        Replacement("9th", "9"),
        Replacement("3rd", "3"),
        Replacement("Street", "St"),
        Replacement("Avenue", "Ave"),
    ]
    for group in IncrementalGrouper(candidates).groups():
        print(f"group of {group.size}:")
        for member in group.replacements:
            print(f"    {member}")


def standardization_demo() -> None:
    """Tables 1 -> 2: end-to-end column standardization."""
    print()
    print("=== Standardizing Table 1 (paper's running example) ===")
    table = ClusterTable(["name"])
    table.add_cluster(
        "C1",
        [
            Record("r1", {"name": "Mary Lee"}),
            Record("r2", {"name": "M. Lee"}),
            Record("r3", {"name": "Lee, Mary"}),
        ],
    )
    table.add_cluster(
        "C2",
        [
            Record("r4", {"name": "Smith, James"}),
            Record("r5", {"name": "James Smith"}),
            Record("r6", {"name": "J. Smith"}),
        ],
    )

    standardizer = Standardizer(table, "name")
    log = standardizer.run(ApproveAllOracle(), budget=10)
    print(
        f"confirmed {log.groups_confirmed} groups, "
        f"approved {log.groups_approved}, changed {log.cells_changed} cells"
    )
    for ci in range(table.num_clusters):
        print(f"  cluster {ci}: {table.cluster_values(ci, 'name')}")


if __name__ == "__main__":
    grouping_demo()
    standardization_demo()
