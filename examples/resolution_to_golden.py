"""Full consolidation pipeline from *unclustered* records to golden
records: entity resolution -> variant standardization -> truth
discovery.

The paper assumes clusters as input (its datasets were keyed by
ISBN / ISSN / EIN); this example exercises the substrate the paper sits
on: records arrive without keys, get clustered by similarity matching,
standardized with the unsupervised grouping method, and fused by three
truth-discovery methods (majority consensus, TruthFinder, Accu).

Run:  python examples/resolution_to_golden.py
"""

from __future__ import annotations

from repro import ApproveAllOracle, Record, Standardizer
from repro.fusion import accu, majority, truthfinder
from repro.pipeline import golden_records
from repro.resolution import Matcher


def make_records() -> list:
    """Raw journal records from three 'sources', no ISSN available."""
    raw = [
        # Journal of Applied Biology, three spellings
        ("s1", "Journal of Applied Biology"),
        ("s2", "J. of Applied Biology"),
        ("s3", "Journal of Applied Biology"),
        ("s2", "J of Applied Biology"),
        # Annals of Chemistry, two spellings
        ("s1", "Annals of Chemistry"),
        ("s3", "Ann. of Chemistry"),
        ("s2", "Annals of Chemistry"),
        # Physics Letters, clean
        ("s1", "Physics Letters"),
        ("s3", "Physics Letters"),
        # A genuinely different journal that must not merge
        ("s2", "Archives of Geology"),
        ("s1", "Archives of Geology"),
    ]
    return [
        Record(f"r{i}", {"title": title}, source)
        for i, (source, title) in enumerate(raw)
    ]


def main() -> None:
    records = make_records()
    print(f"{len(records)} unclustered records")

    # 1. Entity resolution: similarity matching + union-find clustering.
    matcher = Matcher("title", threshold=0.63)
    table = matcher.resolve(records)
    print(f"\nresolved into {table.num_clusters} clusters:")
    for ci in range(table.num_clusters):
        print(f"  {table.cluster_values(ci, 'title')}")

    # 2. Variant standardization (the paper's contribution).
    standardizer = Standardizer(table, "title")
    log = standardizer.run(ApproveAllOracle(), budget=20)
    print(
        f"\nstandardized: {log.groups_approved} groups approved, "
        f"{log.cells_changed} cells changed"
    )
    for ci in range(table.num_clusters):
        print(f"  {table.cluster_values(ci, 'title')}")

    # 3. Truth discovery with three fusion methods.
    print("\ngolden records:")
    for name, fuse in (
        ("majority", majority.fuse),
        ("truthfinder", truthfinder.fuse),
        ("accu", accu.fuse),
    ):
        golden = golden_records(table, "title", fuse)
        values = [golden[ci] for ci in sorted(golden)]
        print(f"  {name:12s} {values}")


if __name__ == "__main__":
    main()
