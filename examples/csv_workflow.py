"""CSV-in, CSV-out: the workflow a downstream adopter actually runs.

1. Load flat records from a CSV (here generated on the fly), cluster
   them by a key column (the ISSN / ISBN / EIN pattern);
2. standardize the variant values — with `--interactive` *you* are the
   expert confirming groups (the paper's Step 3), otherwise a scripted
   reviewer approves everything;
3. fuse golden records and export both the standardized clusters and
   the golden values as CSV.

Run:  python examples/csv_workflow.py [--interactive] [workdir]
"""

from __future__ import annotations

import csv
import sys
import tempfile
from pathlib import Path

from repro import Standardizer
from repro.data.io import (
    read_csv_clusters,
    write_csv_clusters,
    write_golden_csv,
)
from repro.fusion import majority
from repro.pipeline import golden_records
from repro.pipeline.oracle import ApproveAllOracle, ConsoleOracle

RAW_ROWS = [
    ("0001-1111", "Journal of Applied Biology", "libA"),
    ("0001-1111", "J. of Applied Biology", "libB"),
    ("0001-1111", "J of Applied Biology", "libC"),
    ("0002-2222", "Annals of Chemistry", "libA"),
    ("0002-2222", "Ann. of Chemistry", "libB"),
    ("0003-3333", "International Journal of Physics", "libA"),
    ("0003-3333", "Int. Journal of Physics", "libC"),
    ("0004-4444", "Physics Letters", "libB"),
]


def write_input_csv(path: Path) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["issn", "title", "library"])
        writer.writerows(RAW_ROWS)


def main(workdir: Path, interactive: bool) -> None:
    raw_csv = workdir / "journals.csv"
    write_input_csv(raw_csv)
    print(f"wrote input: {raw_csv}")

    # 1. Load and cluster by key.
    table = read_csv_clusters(raw_csv, "issn", source_column="library")
    print(f"clustered: {table}")

    # 2. Standardize the title column.
    oracle = ConsoleOracle() if interactive else ApproveAllOracle()
    standardizer = Standardizer(table, "title")
    log = standardizer.run(oracle, budget=20)
    print(
        f"standardized: {log.groups_confirmed} groups reviewed, "
        f"{log.groups_approved} approved, {log.cells_changed} cells changed"
    )

    # 3. Fuse and export.
    golden = golden_records(table, "title", majority.fuse)
    out_clusters = workdir / "journals_standardized.csv"
    out_golden = workdir / "journals_golden.csv"
    write_csv_clusters(table, out_clusters)
    write_golden_csv(golden, table, "title", out_golden)
    print(f"wrote standardized clusters: {out_clusters}")
    print(f"wrote golden records:        {out_golden}")
    for ci, cluster in enumerate(table.clusters):
        print(f"  {cluster.key}: {golden.get(ci)!r}")


if __name__ == "__main__":
    argv = [a for a in sys.argv[1:]]
    interactive = "--interactive" in argv
    argv = [a for a in argv if a != "--interactive"]
    workdir = Path(argv[0]) if argv else Path(tempfile.mkdtemp(prefix="repro_"))
    workdir.mkdir(parents=True, exist_ok=True)
    main(workdir, interactive)
