"""Table 4 demo: the kinds of groups the method finds in book author
lists — transposed names, initials, annotations, nicknames.

Generates the synthetic AuthorList dataset and prints the first ten
groups produced by the incremental grouper together with sample member
replacements, mirroring the paper's Table 4.

Run:  python examples/author_groups_demo.py [scale]
"""

from __future__ import annotations

import sys

from repro import Standardizer
from repro.datagen import authorlist_dataset


def main(scale: float = 0.3) -> None:
    dataset = authorlist_dataset(scale=scale)
    print(f"dataset: {dataset.table}")
    standardizer = Standardizer(dataset.fresh_table(), dataset.column)
    feed = standardizer.default_feed()

    print("\nlargest groups (paper's Table 4 analogue):\n")
    for rank in range(1, 11):
        group = feed.next_group()
        if group is None:
            break
        print(f"Group {rank} — {group.size} replacements")
        print(f"  program: {group.program.describe()}")
        for member in group.replacements[:5]:
            print(f"    {member}")
        if group.size > 5:
            print(f"    ... and {group.size - 5} more")
        print()


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.3)
