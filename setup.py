"""Legacy setuptools shim for environments without PEP 660 support
(e.g. offline boxes missing the `wheel` package):

    python setup.py develop --no-deps
"""

from setuptools import setup

setup()
