"""Legacy setuptools shim for environments without PEP 660 support
(e.g. offline boxes missing the `wheel` package):

    python setup.py develop --no-deps

All package metadata lives in ``pyproject.toml``; this file exists only
so the legacy install path keeps working.
"""

from setuptools import setup

setup()
